//! The unified run report and sweep aggregation.

use std::collections::BTreeMap;

use sinr_runtime::RoundStats;
use sinr_stats::Summary;

use crate::verify::Coloring;

/// Protocol-specific result fields, alongside [`RunReport`]'s common ones.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Broadcast-style run (both paper algorithms and all baselines); the
    /// common fields say everything.
    Broadcast,
    /// Standalone `StabilizeProbability` execution.
    Coloring {
        /// The produced coloring. Stations whose schedule was truncated
        /// by a budget below the full Fact 7 run report color `0.0`
        /// (uncolored); the run's `completed` flag is `false` then.
        coloring: Coloring,
    },
    /// Ad hoc wake-up.
    Wakeup {
        /// Round of the first spontaneous wake-up.
        first_wake: u64,
        /// Rounds from the first spontaneous wake-up until all awake (the
        /// paper's accounting), or the budget if incomplete.
        rounds_from_first_wake: u64,
    },
    /// Consensus.
    Consensus {
        /// Per-station decisions.
        decided: Vec<Option<u64>>,
        /// Whether all stations decided the same value.
        agreement: bool,
        /// Whether the common decision equals the minimum input.
        valid: bool,
    },
    /// Leader election.
    Leader {
        /// Stations that declared themselves leader.
        leaders: Vec<usize>,
        /// Whether exactly one leader emerged.
        unique: bool,
    },
    /// Alert protocol.
    Alert {
        /// Round each station learned of the alert, if it did.
        learned_at: Vec<Option<u64>>,
    },
}

/// Unified result of one simulation run — the superset of the legacy
/// `BroadcastReport` / `WakeupReport` / `ConsensusReport` / `LeaderReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The seed this run was the deterministic function of.
    pub seed: u64,
    /// Stations in the network.
    pub n: usize,
    /// Rounds executed.
    pub rounds: u64,
    /// Whether the protocol's goal was reached within the budget (all
    /// informed / all awake / agreement / unique leader / schedule done).
    pub completed: bool,
    /// Stations that reached the protocol's per-station goal (informed,
    /// awake, decided, alarmed; `n` for fixed-schedule colorings).
    pub informed: usize,
    /// Total transmissions across the run (energy proxy).
    pub total_transmissions: u64,
    /// Protocol-specific fields.
    pub outcome: Outcome,
    /// Per-round statistics, when requested via
    /// [`crate::sim::Scenario::record_rounds`].
    pub per_round: Option<Vec<RoundStats>>,
    /// Per-node transmission counts (energy proxy), when requested via
    /// [`crate::sim::Scenario::record_rounds`]. `None` for the non-engine
    /// GPS-oracle baseline.
    pub tx_counts: Option<Vec<u64>>,
    /// Named scalar measurements filled by [`crate::sim::Observer`]s.
    pub measurements: BTreeMap<String, f64>,
}

/// Results of a parallel seed sweep, in the seed order given (independent
/// of how many worker threads executed it).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One report per seed, in input order.
    pub runs: Vec<RunReport>,
}

impl SweepReport {
    /// Seeds of the sweep, in order.
    pub fn seeds(&self) -> Vec<u64> {
        self.runs.iter().map(|r| r.seed).collect()
    }

    /// Number of completed runs.
    pub fn completed(&self) -> usize {
        self.runs.iter().filter(|r| r.completed).count()
    }

    /// Fraction of completed runs (0 for an empty sweep).
    pub fn completion_rate(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.completed() as f64 / self.runs.len() as f64
        }
    }

    /// Round counts of the completed runs, as floats for summarising.
    pub fn rounds_of_completed(&self) -> Vec<f64> {
        self.runs
            .iter()
            .filter(|r| r.completed)
            .map(|r| r.rounds as f64)
            .collect()
    }

    /// Summary of completed-run round counts (`None` if none completed).
    pub fn rounds_summary(&self) -> Option<Summary> {
        Summary::of(&self.rounds_of_completed())
    }

    /// `"<completed>/<trials>"`, the experiment tables' success column.
    pub fn ok_string(&self) -> String {
        format!("{}/{}", self.completed(), self.runs.len())
    }
}
