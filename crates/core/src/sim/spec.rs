//! The protocol registry: one declarative variant per runnable protocol.

use sinr_runtime::WakeSchedule;

use crate::verify::Coloring;

/// Which protocol a [`crate::sim::Scenario`] runs, with its per-protocol
/// inputs. Each variant corresponds to one result of the paper (see the
/// [`crate::sim`] module docs for the theorem map).
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolSpec {
    /// `NoSBroadcast` (Theorem 1): `O(D log² n)` broadcast without
    /// spontaneous wake-up.
    NoSBroadcast {
        /// Initially informed station.
        source: usize,
    },
    /// `NoSBroadcast` run with a population **estimate** `nu ≥ n`
    /// (Section 1.1; running time `O(D log² ν)`).
    NoSBroadcastWithEstimate {
        /// Initially informed station.
        source: usize,
        /// Shared population estimate (must be ≥ n).
        nu: usize,
    },
    /// `SBroadcast` (Theorem 2): `O(D log n + log² n)` broadcast with
    /// spontaneous wake-up.
    SBroadcast {
        /// Initially informed station.
        source: usize,
    },
    /// `SBroadcast` with a population estimate `nu ≥ n`
    /// (running time `O(D log ν + log² ν)`).
    SBroadcastWithEstimate {
        /// Initially informed station.
        source: usize,
        /// Shared population estimate (must be ≥ n).
        nu: usize,
    },
    /// One standalone `StabilizeProbability` execution (Section 3, Fact 7);
    /// the report's outcome carries the produced coloring.
    Coloring,
    /// Daum et al.-style decay baseline, which must know the granularity.
    DaumBroadcast {
        /// Initially informed station.
        source: usize,
        /// Known granularity `R_s`; `None` uses the network's measured
        /// value (the baseline's assumption made explicit).
        granularity: Option<f64>,
    },
    /// Fixed-probability flooding baseline.
    FloodBroadcast {
        /// Initially informed station.
        source: usize,
        /// Per-round transmission probability of informed stations.
        p: f64,
    },
    /// Adaptive local-broadcast-style flooding baseline.
    LocalBroadcast {
        /// Initially informed station.
        source: usize,
    },
    /// Burst-based **re-flooding** broadcast — the mobility/churn-aware
    /// flooding variant: informed stations flood for `burst_rounds`
    /// rounds then go dormant, and re-seed a fresh burst whenever the
    /// epoch-refreshed communication graph reports newly joined stations
    /// or a reconnected component (see
    /// [`crate::baselines::ReFloodNode`]). Pair with
    /// [`crate::sim::Scenario::mobility`] / [`crate::sim::Scenario::churn`];
    /// on a frozen topology it floods one burst and stops.
    ReFloodBroadcast {
        /// Initially informed station.
        source: usize,
        /// Per-round transmission probability during an active burst.
        p: f64,
        /// Rounds of flooding granted per (re)seed (must be ≥ 1).
        burst_rounds: u64,
    },
    /// Burst-based re-flooding with an **online ν-estimate**
    /// ([`crate::estimate::EstimatingReFloodNode`]): the transmission
    /// probability is `min(CONTENTION_TARGET/ν̂, 0.75)` for a
    /// per-station estimate ν̂ that grows on in-burst silence runs and
    /// backs off its window under churn — the graceful-degradation
    /// counterpart of [`ProtocolSpec::ReFloodBroadcast`], which keeps
    /// its fixed `p` no matter what the adversary does.
    ReFloodBroadcastEstimate {
        /// Initially informed station.
        source: usize,
        /// Initial population estimate (must be ≥ 1; may be far below
        /// the true population — adapting out of it is the point).
        nu0: usize,
        /// Rounds of flooding granted per (re)seed (must be ≥ 1).
        burst_rounds: u64,
    },
    /// `NoSBroadcast` with an **online** ν-estimate
    /// ([`crate::estimate::EstimatingNoSNode`]): each station re-tunes
    /// its phase schedule at phase boundaries as its estimate grows,
    /// instead of trusting a fixed `nu ≥ n` for the whole run.
    NoSBroadcastOnlineEstimate {
        /// Initially informed station.
        source: usize,
        /// Initial population estimate (must be ≥ 1).
        nu0: usize,
    },
    /// `SBroadcast` with an **online** ν-estimate
    /// ([`crate::estimate::EstimatingSNode`]): the dissemination
    /// probability re-tunes to the growing estimate every round.
    SBroadcastOnlineEstimate {
        /// Initially informed station.
        source: usize,
        /// Initial population estimate (must be ≥ 1).
        nu0: usize,
    },
    /// GPS-oracle grid TDMA (the experiment E12 gold standard: full
    /// coordinates plus an in-cell contention oracle).
    GpsOracleBroadcast {
        /// Initially informed station.
        source: usize,
    },
    /// Ad hoc wake-up under an adversarial schedule (Section 5,
    /// `O(D log² n)` from the first spontaneous wake-up).
    AdhocWakeup {
        /// The adversary's wake-up schedule (must wake someone).
        schedule: WakeSchedule,
    },
    /// Wake-up over an **established coloring** (Fact 11 flood,
    /// `O(D log n + log² n)`).
    EstablishedWakeup {
        /// Backbone colors, one per station.
        coloring: Coloring,
        /// Spontaneously woken stations, one flag per station.
        initiators: Vec<bool>,
    },
    /// Bitwise consensus on per-station input values (Section 5).
    Consensus {
        /// One input value per station (domain `[0, 2^bits)`).
        values: Vec<u64>,
        /// Bits per value.
        bits: u32,
        /// Diameter bound for the per-bit window.
        d_bound: u32,
    },
    /// Leader election: random IDs from `{1..n³}`, then consensus on IDs
    /// (Section 5).
    LeaderElection {
        /// Diameter bound for the per-bit window.
        d_bound: u32,
    },
    /// The alert protocol over an established coloring (Section 1.3):
    /// every station must learn whether any alert occurred.
    Alert {
        /// Backbone colors, one per station.
        coloring: Coloring,
        /// `(station, round)` adversarial alerts.
        alerts: Vec<(usize, u64)>,
        /// Diameter bound for the window length.
        d_bound: u32,
    },
}

impl ProtocolSpec {
    /// Short stable name (table labels, traces).
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolSpec::NoSBroadcast { .. } => "nos-broadcast",
            ProtocolSpec::NoSBroadcastWithEstimate { .. } => "nos-broadcast-nu",
            ProtocolSpec::SBroadcast { .. } => "s-broadcast",
            ProtocolSpec::SBroadcastWithEstimate { .. } => "s-broadcast-nu",
            ProtocolSpec::Coloring => "coloring",
            ProtocolSpec::DaumBroadcast { .. } => "daum",
            ProtocolSpec::FloodBroadcast { .. } => "flood",
            ProtocolSpec::LocalBroadcast { .. } => "local-broadcast",
            ProtocolSpec::ReFloodBroadcast { .. } => "re-flood",
            ProtocolSpec::ReFloodBroadcastEstimate { .. } => "re-flood-online-nu",
            ProtocolSpec::NoSBroadcastOnlineEstimate { .. } => "nos-broadcast-online-nu",
            ProtocolSpec::SBroadcastOnlineEstimate { .. } => "s-broadcast-online-nu",
            ProtocolSpec::GpsOracleBroadcast { .. } => "gps-oracle",
            ProtocolSpec::AdhocWakeup { .. } => "adhoc-wakeup",
            ProtocolSpec::EstablishedWakeup { .. } => "established-wakeup",
            ProtocolSpec::Consensus { .. } => "consensus",
            ProtocolSpec::LeaderElection { .. } => "leader-election",
            ProtocolSpec::Alert { .. } => "alert",
        }
    }

    /// Whether the protocol runs a fixed, self-terminating schedule (its
    /// round count is a function of `n` alone), making an explicit round
    /// budget optional.
    pub fn has_fixed_schedule(&self) -> bool {
        matches!(
            self,
            ProtocolSpec::Coloring
                | ProtocolSpec::Consensus { .. }
                | ProtocolSpec::LeaderElection { .. }
        )
    }

    /// Whether the protocol supports a **dynamic population**
    /// ([`crate::sim::Scenario::churn`]): per-station goals that spawned
    /// stations can meaningfully adopt mid-run. The broadcast family
    /// qualifies; fixed global schedules (coloring, consensus, leader
    /// election), the coloring-backbone applications (established wake-up,
    /// alert), the adversarial wake-up schedule and the precomputed
    /// GPS-oracle TDMA do not — `Scenario::build` rejects churn for them.
    pub fn supports_churn(&self) -> bool {
        matches!(
            self,
            ProtocolSpec::NoSBroadcast { .. }
                | ProtocolSpec::NoSBroadcastWithEstimate { .. }
                | ProtocolSpec::SBroadcast { .. }
                | ProtocolSpec::SBroadcastWithEstimate { .. }
                | ProtocolSpec::DaumBroadcast { .. }
                | ProtocolSpec::FloodBroadcast { .. }
                | ProtocolSpec::LocalBroadcast { .. }
                | ProtocolSpec::ReFloodBroadcast { .. }
                | ProtocolSpec::ReFloodBroadcastEstimate { .. }
                | ProtocolSpec::NoSBroadcastOnlineEstimate { .. }
                | ProtocolSpec::SBroadcastOnlineEstimate { .. }
        )
    }

    /// The initially informed station of broadcast-style protocols —
    /// protected from churn (killing the source makes the dissemination
    /// goal undefined).
    pub fn broadcast_source(&self) -> Option<usize> {
        match self {
            ProtocolSpec::NoSBroadcast { source }
            | ProtocolSpec::NoSBroadcastWithEstimate { source, .. }
            | ProtocolSpec::SBroadcast { source }
            | ProtocolSpec::SBroadcastWithEstimate { source, .. }
            | ProtocolSpec::DaumBroadcast { source, .. }
            | ProtocolSpec::FloodBroadcast { source, .. }
            | ProtocolSpec::LocalBroadcast { source }
            | ProtocolSpec::ReFloodBroadcast { source, .. }
            | ProtocolSpec::ReFloodBroadcastEstimate { source, .. }
            | ProtocolSpec::NoSBroadcastOnlineEstimate { source, .. }
            | ProtocolSpec::SBroadcastOnlineEstimate { source, .. }
            | ProtocolSpec::GpsOracleBroadcast { source } => Some(*source),
            _ => None,
        }
    }
}
