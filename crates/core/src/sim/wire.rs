//! Wire codecs: scenario submissions and run reports as canonical JSON.
//!
//! This module is the serialization seam between the in-process
//! [`Scenario`] API and the `sinr-serve` network protocol (and any
//! future checkpointed-sweep or cross-process sharding layer): a
//! [`ScenarioSpec`] is the *data* form of a scenario — every builder
//! knob that is plain data, no closures — and [`encode_run_report`] /
//! [`decode_run_report`] carry results back.
//!
//! Everything encodes through [`sinr_wire::Value`] in **canonical
//! form**: fields in fixed schema order, no whitespace, `u64` exact.
//! Encoding a decoded value reproduces the input bytes, so
//! byte-identity of reports — the determinism contract — survives the
//! wire; `tests` below and `crates/serve/tests/server_determinism.rs`
//! pin this.
//!
//! Enums are tagged objects: `{"kind":"<tag>", ...fields}`. Protocol
//! tags reuse [`ProtocolSpec::name`]. Optional fields are always
//! present, `null` when absent, keeping the schema self-describing.

use std::collections::BTreeMap;

use sinr_geometry::{Point2, RepairPolicy};
use sinr_phy::{Accumulation, InterferenceMode, KernelDispatch, SinrParams};
use sinr_runtime::{RoundStats, WakeSchedule};
use sinr_wire::Value;

use crate::constants::Constants;
use crate::verify::Coloring;

use super::{
    AdversaryModel, AdversarySpec, ChurnModel, ChurnSpec, CoveragePoint, FaultReport,
    MobilityModel, MobilitySpec, Outcome, ProtocolSpec, RunReport, Scenario, SimError,
    TopologySpec,
};

/// A decode failure: the wire text did not describe a well-formed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was malformed.
    pub message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

impl From<sinr_wire::ParseError> for WireError {
    fn from(e: sinr_wire::ParseError) -> Self {
        WireError::new(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Decode helpers
// ---------------------------------------------------------------------

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, WireError> {
    v.get(key)
        .ok_or_else(|| WireError::new(format!("missing field '{key}'")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, WireError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| WireError::new(format!("field '{key}' is not a u64")))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, WireError> {
    field(v, key)?
        .as_usize()
        .ok_or_else(|| WireError::new(format!("field '{key}' is not a usize")))
}

fn u32_field(v: &Value, key: &str) -> Result<u32, WireError> {
    u64_field(v, key)?
        .try_into()
        .map_err(|_| WireError::new(format!("field '{key}' exceeds u32")))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, WireError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| WireError::new(format!("field '{key}' is not a number")))
}

fn bool_field(v: &Value, key: &str) -> Result<bool, WireError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| WireError::new(format!("field '{key}' is not a bool")))
}

fn array_field<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], WireError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| WireError::new(format!("field '{key}' is not an array")))
}

fn opt_u64_field(v: &Value, key: &str) -> Result<Option<u64>, WireError> {
    let f = field(v, key)?;
    if f.is_null() {
        Ok(None)
    } else {
        f.as_u64()
            .map(Some)
            .ok_or_else(|| WireError::new(format!("field '{key}' is not a u64 or null")))
    }
}

fn kind(v: &Value) -> Result<&str, WireError> {
    field(v, "kind")?
        .as_str()
        .ok_or_else(|| WireError::new("field 'kind' is not a string"))
}

fn opt_u64_value(o: Option<u64>) -> Value {
    o.map_or(Value::Null, Value::UInt)
}

fn usize_value(u: usize) -> Value {
    Value::UInt(u as u64)
}

fn tagged(tag: &str, mut fields: Vec<(String, Value)>) -> Value {
    let mut all = vec![("kind".to_string(), Value::str(tag))];
    all.append(&mut fields);
    Value::Object(all)
}

// ---------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------

fn topology_to_value(t: &TopologySpec) -> Value {
    let f = |k: &str, v: Value| (k.to_string(), v);
    match *t {
        TopologySpec::UniformSquare { n, side } => tagged(
            "uniform-square",
            vec![f("n", usize_value(n)), f("side", Value::Float(side))],
        ),
        TopologySpec::ConnectedSquare { n, side } => tagged(
            "connected-square",
            vec![f("n", usize_value(n)), f("side", Value::Float(side))],
        ),
        TopologySpec::ConnectedSquareDensity { n, density } => tagged(
            "connected-square-density",
            vec![f("n", usize_value(n)), f("density", Value::Float(density))],
        ),
        TopologySpec::UniformDisk { n, radius } => tagged(
            "uniform-disk",
            vec![f("n", usize_value(n)), f("radius", Value::Float(radius))],
        ),
        TopologySpec::Lattice {
            rows,
            cols,
            spacing,
        } => tagged(
            "lattice",
            vec![
                f("rows", usize_value(rows)),
                f("cols", usize_value(cols)),
                f("spacing", Value::Float(spacing)),
            ],
        ),
        TopologySpec::JitteredLattice {
            rows,
            cols,
            spacing,
            amplitude,
        } => tagged(
            "jittered-lattice",
            vec![
                f("rows", usize_value(rows)),
                f("cols", usize_value(cols)),
                f("spacing", Value::Float(spacing)),
                f("amplitude", Value::Float(amplitude)),
            ],
        ),
        TopologySpec::UniformLine { n, gap } => tagged(
            "uniform-line",
            vec![f("n", usize_value(n)), f("gap", Value::Float(gap))],
        ),
        TopologySpec::HalvingLine {
            n,
            first_gap,
            ratio,
            min_gap,
        } => tagged(
            "halving-line",
            vec![
                f("n", usize_value(n)),
                f("first_gap", Value::Float(first_gap)),
                f("ratio", Value::Float(ratio)),
                f("min_gap", Value::Float(min_gap)),
            ],
        ),
        TopologySpec::GranularityLine {
            n,
            max_gap,
            rs_target,
            min_gap,
        } => tagged(
            "granularity-line",
            vec![
                f("n", usize_value(n)),
                f("max_gap", Value::Float(max_gap)),
                f("rs_target", Value::Float(rs_target)),
                f("min_gap", Value::Float(min_gap)),
            ],
        ),
        TopologySpec::GranularityLineFixedD {
            n,
            max_gap,
            rs_target,
            d_hops,
            min_gap,
        } => tagged(
            "granularity-line-fixed-d",
            vec![
                f("n", usize_value(n)),
                f("max_gap", Value::Float(max_gap)),
                f("rs_target", Value::Float(rs_target)),
                f("d_hops", usize_value(d_hops)),
                f("min_gap", Value::Float(min_gap)),
            ],
        ),
        TopologySpec::ClusterChain {
            diameter,
            per_cluster,
        } => tagged(
            "cluster-chain",
            vec![
                f("diameter", Value::UInt(u64::from(diameter))),
                f("per_cluster", usize_value(per_cluster)),
            ],
        ),
        TopologySpec::GaussianClusters {
            k,
            per_cluster,
            side,
            sigma,
        } => tagged(
            "gaussian-clusters",
            vec![
                f("k", usize_value(k)),
                f("per_cluster", usize_value(per_cluster)),
                f("side", Value::Float(side)),
                f("sigma", Value::Float(sigma)),
            ],
        ),
        TopologySpec::CoreAndSatellites {
            core_n,
            sat_n,
            core_radius,
            sat_distance,
        } => tagged(
            "core-and-satellites",
            vec![
                f("core_n", usize_value(core_n)),
                f("sat_n", usize_value(sat_n)),
                f("core_radius", Value::Float(core_radius)),
                f("sat_distance", Value::Float(sat_distance)),
            ],
        ),
        TopologySpec::Ring { n, radius } => tagged(
            "ring",
            vec![f("n", usize_value(n)), f("radius", Value::Float(radius))],
        ),
        TopologySpec::Bridge {
            blob_n,
            corridor_n,
            blob_side,
        } => tagged(
            "bridge",
            vec![
                f("blob_n", usize_value(blob_n)),
                f("corridor_n", usize_value(corridor_n)),
                f("blob_side", Value::Float(blob_side)),
            ],
        ),
        TopologySpec::TwoTier {
            dense_n,
            ratio,
            side,
        } => tagged(
            "two-tier",
            vec![
                f("dense_n", usize_value(dense_n)),
                f("ratio", usize_value(ratio)),
                f("side", Value::Float(side)),
            ],
        ),
    }
}

fn topology_from_value(v: &Value) -> Result<TopologySpec, WireError> {
    Ok(match kind(v)? {
        "uniform-square" => TopologySpec::UniformSquare {
            n: usize_field(v, "n")?,
            side: f64_field(v, "side")?,
        },
        "connected-square" => TopologySpec::ConnectedSquare {
            n: usize_field(v, "n")?,
            side: f64_field(v, "side")?,
        },
        "connected-square-density" => TopologySpec::ConnectedSquareDensity {
            n: usize_field(v, "n")?,
            density: f64_field(v, "density")?,
        },
        "uniform-disk" => TopologySpec::UniformDisk {
            n: usize_field(v, "n")?,
            radius: f64_field(v, "radius")?,
        },
        "lattice" => TopologySpec::Lattice {
            rows: usize_field(v, "rows")?,
            cols: usize_field(v, "cols")?,
            spacing: f64_field(v, "spacing")?,
        },
        "jittered-lattice" => TopologySpec::JitteredLattice {
            rows: usize_field(v, "rows")?,
            cols: usize_field(v, "cols")?,
            spacing: f64_field(v, "spacing")?,
            amplitude: f64_field(v, "amplitude")?,
        },
        "uniform-line" => TopologySpec::UniformLine {
            n: usize_field(v, "n")?,
            gap: f64_field(v, "gap")?,
        },
        "halving-line" => TopologySpec::HalvingLine {
            n: usize_field(v, "n")?,
            first_gap: f64_field(v, "first_gap")?,
            ratio: f64_field(v, "ratio")?,
            min_gap: f64_field(v, "min_gap")?,
        },
        "granularity-line" => TopologySpec::GranularityLine {
            n: usize_field(v, "n")?,
            max_gap: f64_field(v, "max_gap")?,
            rs_target: f64_field(v, "rs_target")?,
            min_gap: f64_field(v, "min_gap")?,
        },
        "granularity-line-fixed-d" => TopologySpec::GranularityLineFixedD {
            n: usize_field(v, "n")?,
            max_gap: f64_field(v, "max_gap")?,
            rs_target: f64_field(v, "rs_target")?,
            d_hops: usize_field(v, "d_hops")?,
            min_gap: f64_field(v, "min_gap")?,
        },
        "cluster-chain" => TopologySpec::ClusterChain {
            diameter: u32_field(v, "diameter")?,
            per_cluster: usize_field(v, "per_cluster")?,
        },
        "gaussian-clusters" => TopologySpec::GaussianClusters {
            k: usize_field(v, "k")?,
            per_cluster: usize_field(v, "per_cluster")?,
            side: f64_field(v, "side")?,
            sigma: f64_field(v, "sigma")?,
        },
        "core-and-satellites" => TopologySpec::CoreAndSatellites {
            core_n: usize_field(v, "core_n")?,
            sat_n: usize_field(v, "sat_n")?,
            core_radius: f64_field(v, "core_radius")?,
            sat_distance: f64_field(v, "sat_distance")?,
        },
        "ring" => TopologySpec::Ring {
            n: usize_field(v, "n")?,
            radius: f64_field(v, "radius")?,
        },
        "bridge" => TopologySpec::Bridge {
            blob_n: usize_field(v, "blob_n")?,
            corridor_n: usize_field(v, "corridor_n")?,
            blob_side: f64_field(v, "blob_side")?,
        },
        "two-tier" => TopologySpec::TwoTier {
            dense_n: usize_field(v, "dense_n")?,
            ratio: usize_field(v, "ratio")?,
            side: f64_field(v, "side")?,
        },
        other => return Err(WireError::new(format!("unknown topology kind '{other}'"))),
    })
}

// ---------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------

fn wake_schedule_to_value(s: &WakeSchedule) -> Value {
    match s {
        WakeSchedule::AllAt(round) => tagged("all-at", vec![("round".into(), Value::UInt(*round))]),
        WakeSchedule::Selected(entries) => tagged(
            "selected",
            vec![(
                "entries".into(),
                Value::Array(
                    entries
                        .iter()
                        .map(|&(station, round)| {
                            Value::Array(vec![usize_value(station), Value::UInt(round)])
                        })
                        .collect(),
                ),
            )],
        ),
        WakeSchedule::Staggered { start, gap } => tagged(
            "staggered",
            vec![
                ("start".into(), Value::UInt(*start)),
                ("gap".into(), Value::UInt(*gap)),
            ],
        ),
    }
}

fn wake_schedule_from_value(v: &Value) -> Result<WakeSchedule, WireError> {
    Ok(match kind(v)? {
        "all-at" => WakeSchedule::AllAt(u64_field(v, "round")?),
        "selected" => {
            let mut entries = Vec::new();
            for e in array_field(v, "entries")? {
                let pair = e
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| WireError::new("wake entry is not a [station, round] pair"))?;
                let station = pair[0]
                    .as_usize()
                    .ok_or_else(|| WireError::new("wake entry station is not a usize"))?;
                let round = pair[1]
                    .as_u64()
                    .ok_or_else(|| WireError::new("wake entry round is not a u64"))?;
                entries.push((station, round));
            }
            WakeSchedule::Selected(entries)
        }
        "staggered" => WakeSchedule::Staggered {
            start: u64_field(v, "start")?,
            gap: u64_field(v, "gap")?,
        },
        other => {
            return Err(WireError::new(format!(
                "unknown wake-schedule kind '{other}'"
            )))
        }
    })
}

fn coloring_to_value(c: &Coloring) -> Value {
    Value::Array(c.colors.iter().map(|&x| Value::Float(x)).collect())
}

fn coloring_from_value(v: &Value, what: &str) -> Result<Coloring, WireError> {
    let items = v
        .as_array()
        .ok_or_else(|| WireError::new(format!("{what} is not an array")))?;
    let mut colors = Vec::with_capacity(items.len());
    for item in items {
        colors.push(
            item.as_f64()
                .ok_or_else(|| WireError::new(format!("{what} entry is not a number")))?,
        );
    }
    Ok(Coloring::new(colors))
}

fn protocol_to_value(p: &ProtocolSpec) -> Value {
    let f = |k: &str, v: Value| (k.to_string(), v);
    let tag = p.name();
    match p {
        ProtocolSpec::NoSBroadcast { source }
        | ProtocolSpec::SBroadcast { source }
        | ProtocolSpec::LocalBroadcast { source }
        | ProtocolSpec::GpsOracleBroadcast { source } => {
            tagged(tag, vec![f("source", usize_value(*source))])
        }
        ProtocolSpec::NoSBroadcastWithEstimate { source, nu }
        | ProtocolSpec::SBroadcastWithEstimate { source, nu } => tagged(
            tag,
            vec![f("source", usize_value(*source)), f("nu", usize_value(*nu))],
        ),
        ProtocolSpec::Coloring => tagged(tag, vec![]),
        ProtocolSpec::DaumBroadcast {
            source,
            granularity,
        } => tagged(
            tag,
            vec![
                f("source", usize_value(*source)),
                f("granularity", granularity.map_or(Value::Null, Value::Float)),
            ],
        ),
        ProtocolSpec::FloodBroadcast { source, p } => tagged(
            tag,
            vec![f("source", usize_value(*source)), f("p", Value::Float(*p))],
        ),
        ProtocolSpec::ReFloodBroadcast {
            source,
            p,
            burst_rounds,
        } => tagged(
            tag,
            vec![
                f("source", usize_value(*source)),
                f("p", Value::Float(*p)),
                f("burst_rounds", Value::UInt(*burst_rounds)),
            ],
        ),
        ProtocolSpec::ReFloodBroadcastEstimate {
            source,
            nu0,
            burst_rounds,
        } => tagged(
            tag,
            vec![
                f("source", usize_value(*source)),
                f("nu0", usize_value(*nu0)),
                f("burst_rounds", Value::UInt(*burst_rounds)),
            ],
        ),
        ProtocolSpec::NoSBroadcastOnlineEstimate { source, nu0 }
        | ProtocolSpec::SBroadcastOnlineEstimate { source, nu0 } => tagged(
            tag,
            vec![
                f("source", usize_value(*source)),
                f("nu0", usize_value(*nu0)),
            ],
        ),
        ProtocolSpec::AdhocWakeup { schedule } => {
            tagged(tag, vec![f("schedule", wake_schedule_to_value(schedule))])
        }
        ProtocolSpec::EstablishedWakeup {
            coloring,
            initiators,
        } => tagged(
            tag,
            vec![
                f("coloring", coloring_to_value(coloring)),
                f(
                    "initiators",
                    Value::Array(initiators.iter().map(|&b| Value::Bool(b)).collect()),
                ),
            ],
        ),
        ProtocolSpec::Consensus {
            values,
            bits,
            d_bound,
        } => tagged(
            tag,
            vec![
                f(
                    "values",
                    Value::Array(values.iter().map(|&x| Value::UInt(x)).collect()),
                ),
                f("bits", Value::UInt(u64::from(*bits))),
                f("d_bound", Value::UInt(u64::from(*d_bound))),
            ],
        ),
        ProtocolSpec::LeaderElection { d_bound } => {
            tagged(tag, vec![f("d_bound", Value::UInt(u64::from(*d_bound)))])
        }
        ProtocolSpec::Alert {
            coloring,
            alerts,
            d_bound,
        } => tagged(
            tag,
            vec![
                f("coloring", coloring_to_value(coloring)),
                f(
                    "alerts",
                    Value::Array(
                        alerts
                            .iter()
                            .map(|&(station, round)| {
                                Value::Array(vec![usize_value(station), Value::UInt(round)])
                            })
                            .collect(),
                    ),
                ),
                f("d_bound", Value::UInt(u64::from(*d_bound))),
            ],
        ),
    }
}

fn protocol_from_value(v: &Value) -> Result<ProtocolSpec, WireError> {
    let source = || usize_field(v, "source");
    Ok(match kind(v)? {
        "nos-broadcast" => ProtocolSpec::NoSBroadcast { source: source()? },
        "nos-broadcast-nu" => ProtocolSpec::NoSBroadcastWithEstimate {
            source: source()?,
            nu: usize_field(v, "nu")?,
        },
        "s-broadcast" => ProtocolSpec::SBroadcast { source: source()? },
        "s-broadcast-nu" => ProtocolSpec::SBroadcastWithEstimate {
            source: source()?,
            nu: usize_field(v, "nu")?,
        },
        "coloring" => ProtocolSpec::Coloring,
        "daum" => ProtocolSpec::DaumBroadcast {
            source: source()?,
            granularity: {
                let g = field(v, "granularity")?;
                if g.is_null() {
                    None
                } else {
                    Some(g.as_f64().ok_or_else(|| {
                        WireError::new("field 'granularity' is not a number or null")
                    })?)
                }
            },
        },
        "flood" => ProtocolSpec::FloodBroadcast {
            source: source()?,
            p: f64_field(v, "p")?,
        },
        "local-broadcast" => ProtocolSpec::LocalBroadcast { source: source()? },
        "re-flood" => ProtocolSpec::ReFloodBroadcast {
            source: source()?,
            p: f64_field(v, "p")?,
            burst_rounds: u64_field(v, "burst_rounds")?,
        },
        "re-flood-online-nu" => ProtocolSpec::ReFloodBroadcastEstimate {
            source: source()?,
            nu0: usize_field(v, "nu0")?,
            burst_rounds: u64_field(v, "burst_rounds")?,
        },
        "nos-broadcast-online-nu" => ProtocolSpec::NoSBroadcastOnlineEstimate {
            source: source()?,
            nu0: usize_field(v, "nu0")?,
        },
        "s-broadcast-online-nu" => ProtocolSpec::SBroadcastOnlineEstimate {
            source: source()?,
            nu0: usize_field(v, "nu0")?,
        },
        "gps-oracle" => ProtocolSpec::GpsOracleBroadcast { source: source()? },
        "adhoc-wakeup" => ProtocolSpec::AdhocWakeup {
            schedule: wake_schedule_from_value(field(v, "schedule")?)?,
        },
        "established-wakeup" => ProtocolSpec::EstablishedWakeup {
            coloring: coloring_from_value(field(v, "coloring")?, "coloring")?,
            initiators: {
                let mut out = Vec::new();
                for b in array_field(v, "initiators")? {
                    out.push(
                        b.as_bool()
                            .ok_or_else(|| WireError::new("initiator flag is not a bool"))?,
                    );
                }
                out
            },
        },
        "consensus" => ProtocolSpec::Consensus {
            values: {
                let mut out = Vec::new();
                for x in array_field(v, "values")? {
                    out.push(
                        x.as_u64()
                            .ok_or_else(|| WireError::new("consensus value is not a u64"))?,
                    );
                }
                out
            },
            bits: u32_field(v, "bits")?,
            d_bound: u32_field(v, "d_bound")?,
        },
        "leader-election" => ProtocolSpec::LeaderElection {
            d_bound: u32_field(v, "d_bound")?,
        },
        "alert" => ProtocolSpec::Alert {
            coloring: coloring_from_value(field(v, "coloring")?, "coloring")?,
            alerts: {
                let mut out = Vec::new();
                for e in array_field(v, "alerts")? {
                    let pair = e
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| WireError::new("alert is not a [station, round] pair"))?;
                    let station = pair[0]
                        .as_usize()
                        .ok_or_else(|| WireError::new("alert station is not a usize"))?;
                    let round = pair[1]
                        .as_u64()
                        .ok_or_else(|| WireError::new("alert round is not a u64"))?;
                    out.push((station, round));
                }
                out
            },
            d_bound: u32_field(v, "d_bound")?,
        },
        other => return Err(WireError::new(format!("unknown protocol kind '{other}'"))),
    })
}

// ---------------------------------------------------------------------
// Execution knobs
// ---------------------------------------------------------------------

fn mode_to_value(m: InterferenceMode) -> Value {
    match m {
        InterferenceMode::Exact => tagged("exact", vec![]),
        InterferenceMode::Truncated { radius } => {
            tagged("truncated", vec![("radius".into(), Value::Float(radius))])
        }
        InterferenceMode::CellAggregate { near_radius } => tagged(
            "cell-aggregate",
            vec![("near_radius".into(), Value::Float(near_radius))],
        ),
        InterferenceMode::GridNative { near_radius } => tagged(
            "grid-native",
            vec![("near_radius".into(), Value::Float(near_radius))],
        ),
    }
}

fn mode_from_value(v: &Value) -> Result<InterferenceMode, WireError> {
    Ok(match kind(v)? {
        "exact" => InterferenceMode::Exact,
        "truncated" => InterferenceMode::Truncated {
            radius: f64_field(v, "radius")?,
        },
        "cell-aggregate" => InterferenceMode::CellAggregate {
            near_radius: f64_field(v, "near_radius")?,
        },
        "grid-native" => InterferenceMode::GridNative {
            near_radius: f64_field(v, "near_radius")?,
        },
        other => {
            return Err(WireError::new(format!(
                "unknown interference mode '{other}'"
            )))
        }
    })
}

fn repair_to_value(r: RepairPolicy) -> Value {
    match r {
        RepairPolicy::Auto { threshold } => {
            tagged("auto", vec![("threshold".into(), Value::Float(threshold))])
        }
        RepairPolicy::AlwaysFull => tagged("always-full", vec![]),
        RepairPolicy::AlwaysIncremental => tagged("always-incremental", vec![]),
    }
}

fn repair_from_value(v: &Value) -> Result<RepairPolicy, WireError> {
    Ok(match kind(v)? {
        "auto" => RepairPolicy::Auto {
            threshold: f64_field(v, "threshold")?,
        },
        "always-full" => RepairPolicy::AlwaysFull,
        "always-incremental" => RepairPolicy::AlwaysIncremental,
        other => return Err(WireError::new(format!("unknown repair policy '{other}'"))),
    })
}

fn dispatch_to_value(d: KernelDispatch) -> Value {
    Value::str(d.label())
}

fn dispatch_from_value(v: &Value) -> Result<KernelDispatch, WireError> {
    match v.as_str() {
        Some("auto") => Ok(KernelDispatch::Auto),
        Some("scalar") => Ok(KernelDispatch::ForceScalar),
        Some(other) => Err(WireError::new(format!("unknown kernel dispatch '{other}'"))),
        None => Err(WireError::new("field 'kernel_dispatch' is not a string")),
    }
}

fn accumulation_to_value(a: Accumulation) -> Value {
    Value::str(a.label())
}

fn accumulation_from_value(v: &Value) -> Result<Accumulation, WireError> {
    match v.as_str() {
        Some("f64") => Ok(Accumulation::F64),
        Some("f32") => Ok(Accumulation::F32),
        Some(other) => Err(WireError::new(format!("unknown accumulation '{other}'"))),
        None => Err(WireError::new("field 'accumulation' is not a string")),
    }
}

fn constants_to_value(c: &Constants) -> Value {
    Value::Object(vec![
        ("c1_cap".into(), Value::Float(c.c1_cap)),
        ("c2_mass".into(), Value::Float(c.c2_mass)),
        ("p_max".into(), Value::Float(c.p_max)),
        ("c0".into(), Value::Float(c.c0)),
        ("c1".into(), Value::Float(c.c1)),
        ("c2".into(), Value::Float(c.c2)),
        ("c3".into(), Value::Float(c.c3)),
        ("c_prime".into(), Value::UInt(u64::from(c.c_prime))),
        ("c_eps".into(), Value::Float(c.c_eps)),
        ("c_bcast".into(), Value::Float(c.c_bcast)),
        ("dissem_factor".into(), Value::Float(c.dissem_factor)),
        ("hop_factor".into(), Value::Float(c.hop_factor)),
    ])
}

fn constants_from_value(v: &Value) -> Result<Constants, WireError> {
    Ok(Constants {
        c1_cap: f64_field(v, "c1_cap")?,
        c2_mass: f64_field(v, "c2_mass")?,
        p_max: f64_field(v, "p_max")?,
        c0: f64_field(v, "c0")?,
        c1: f64_field(v, "c1")?,
        c2: f64_field(v, "c2")?,
        c3: f64_field(v, "c3")?,
        c_prime: u32_field(v, "c_prime")?,
        c_eps: f64_field(v, "c_eps")?,
        c_bcast: f64_field(v, "c_bcast")?,
        dissem_factor: f64_field(v, "dissem_factor")?,
        hop_factor: f64_field(v, "hop_factor")?,
    })
}

fn mobility_to_value(s: &MobilitySpec) -> Value {
    let model = match s.model {
        MobilityModel::RandomWaypoint {
            speed,
            pause_epochs,
        } => tagged(
            "random-waypoint",
            vec![
                ("speed".into(), Value::Float(speed)),
                ("pause_epochs".into(), Value::UInt(pause_epochs)),
            ],
        ),
        MobilityModel::Drift { speed } => {
            tagged("drift", vec![("speed".into(), Value::Float(speed))])
        }
        MobilityModel::TeleportChurn { fraction } => tagged(
            "teleport-churn",
            vec![("fraction".into(), Value::Float(fraction))],
        ),
    };
    Value::Object(vec![
        ("model".into(), model),
        ("epoch_rounds".into(), Value::UInt(s.epoch_rounds)),
    ])
}

fn mobility_from_value(v: &Value) -> Result<MobilitySpec, WireError> {
    let m = field(v, "model")?;
    let model = match kind(m)? {
        "random-waypoint" => MobilityModel::RandomWaypoint {
            speed: f64_field(m, "speed")?,
            pause_epochs: u64_field(m, "pause_epochs")?,
        },
        "drift" => MobilityModel::Drift {
            speed: f64_field(m, "speed")?,
        },
        "teleport-churn" => MobilityModel::TeleportChurn {
            fraction: f64_field(m, "fraction")?,
        },
        other => return Err(WireError::new(format!("unknown mobility model '{other}'"))),
    };
    Ok(MobilitySpec {
        model,
        epoch_rounds: u64_field(v, "epoch_rounds")?,
    })
}

fn churn_to_value(s: &ChurnSpec) -> Value {
    Value::Object(vec![
        ("arrival_rate".into(), Value::Float(s.model.arrival_rate)),
        ("mean_lifetime".into(), Value::Float(s.model.mean_lifetime)),
        ("epoch_rounds".into(), Value::UInt(s.epoch_rounds)),
    ])
}

fn churn_from_value(v: &Value) -> Result<ChurnSpec, WireError> {
    Ok(ChurnSpec {
        model: ChurnModel {
            arrival_rate: f64_field(v, "arrival_rate")?,
            mean_lifetime: f64_field(v, "mean_lifetime")?,
        },
        epoch_rounds: u64_field(v, "epoch_rounds")?,
    })
}

fn adversary_to_value(s: &AdversarySpec) -> Value {
    let models = s
        .models
        .iter()
        .map(|m| match *m {
            AdversaryModel::CutVertexKill { fraction, at_epoch } => tagged(
                "cut-vertex-kill",
                vec![
                    ("fraction".into(), Value::Float(fraction)),
                    ("at_epoch".into(), Value::UInt(at_epoch)),
                ],
            ),
            AdversaryModel::PhaseCrashBurst {
                kills,
                every_phases,
            } => tagged(
                "phase-crash-burst",
                vec![
                    ("kills".into(), usize_value(kills)),
                    ("every_phases".into(), Value::UInt(every_phases)),
                ],
            ),
            AdversaryModel::Jam { jammers } => {
                tagged("jam", vec![("jammers".into(), usize_value(jammers))])
            }
            AdversaryModel::Blackout {
                fraction,
                outage_epochs,
            } => tagged(
                "blackout",
                vec![
                    ("fraction".into(), Value::Float(fraction)),
                    ("outage_epochs".into(), Value::UInt(outage_epochs)),
                ],
            ),
        })
        .collect();
    Value::Object(vec![
        ("models".into(), Value::Array(models)),
        ("epoch_rounds".into(), Value::UInt(s.epoch_rounds)),
    ])
}

fn adversary_from_value(v: &Value) -> Result<AdversarySpec, WireError> {
    let mut models = Vec::new();
    for m in array_field(v, "models")? {
        models.push(match kind(m)? {
            "cut-vertex-kill" => AdversaryModel::CutVertexKill {
                fraction: f64_field(m, "fraction")?,
                at_epoch: u64_field(m, "at_epoch")?,
            },
            "phase-crash-burst" => AdversaryModel::PhaseCrashBurst {
                kills: usize_field(m, "kills")?,
                every_phases: u64_field(m, "every_phases")?,
            },
            "jam" => AdversaryModel::Jam {
                jammers: usize_field(m, "jammers")?,
            },
            "blackout" => AdversaryModel::Blackout {
                fraction: f64_field(m, "fraction")?,
                outage_epochs: u64_field(m, "outage_epochs")?,
            },
            other => return Err(WireError::new(format!("unknown adversary model '{other}'"))),
        });
    }
    Ok(AdversarySpec {
        models,
        epoch_rounds: u64_field(v, "epoch_rounds")?,
    })
}

// ---------------------------------------------------------------------
// ScenarioSpec
// ---------------------------------------------------------------------

/// The wire form of a scenario: every [`Scenario`] builder knob that is
/// plain data (topology, protocol, physics parameters, constants,
/// execution knobs, dynamics). Observers are deliberately absent — they
/// are process-local closures; hosts attach their own (e.g. the
/// `sinr-serve` streaming observer) after [`ScenarioSpec::to_scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Deployment family.
    pub topology: TopologySpec,
    /// Protocol to run.
    pub protocol: ProtocolSpec,
    /// Path-loss exponent α.
    pub alpha: f64,
    /// Decode threshold β.
    pub beta: f64,
    /// Ambient noise N.
    pub noise: f64,
    /// Communication-graph slack ε.
    pub eps: f64,
    /// Weak-sensitivity parameter γ.
    pub gamma: f64,
    /// Protocol constants.
    pub constants: Constants,
    /// Round budget (`None` only for fixed-schedule protocols).
    pub budget: Option<u64>,
    /// Interference kernel.
    pub mode: InterferenceMode,
    /// Physics threads per trial.
    pub physics_threads: usize,
    /// Whether to record per-round traces into the report.
    pub record: bool,
    /// Kernel tier of the batched physics kernels (bit-neutral knob).
    pub kernel_dispatch: KernelDispatch,
    /// Precision of the grid-native interference tail sum.
    pub accumulation: Accumulation,
    /// Epoch-boundary structure repair policy.
    pub repair: RepairPolicy,
    /// Motion model, if the topology is dynamic.
    pub mobility: Option<MobilitySpec>,
    /// Population model, if stations churn.
    pub churn: Option<ChurnSpec>,
    /// Fault injection, if adversarial.
    pub adversary: Option<AdversarySpec>,
}

impl ScenarioSpec {
    /// A spec with the default execution knobs ([`SinrParams::default_plane`]
    /// physics, tuned constants, exact interference, one physics thread,
    /// no recording, default repair, no dynamics).
    pub fn new(topology: TopologySpec, protocol: ProtocolSpec) -> Self {
        let params = SinrParams::default_plane();
        ScenarioSpec {
            topology,
            protocol,
            alpha: params.alpha(),
            beta: params.beta(),
            noise: params.noise(),
            eps: params.eps(),
            gamma: params.gamma(),
            constants: Constants::tuned(),
            budget: None,
            mode: InterferenceMode::Exact,
            physics_threads: 1,
            record: false,
            kernel_dispatch: KernelDispatch::default(),
            accumulation: Accumulation::default(),
            repair: RepairPolicy::default(),
            mobility: None,
            churn: None,
            adversary: None,
        }
    }

    /// The spec as a wire value (canonical field order).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("topology".into(), topology_to_value(&self.topology)),
            ("protocol".into(), protocol_to_value(&self.protocol)),
            ("alpha".into(), Value::Float(self.alpha)),
            ("beta".into(), Value::Float(self.beta)),
            ("noise".into(), Value::Float(self.noise)),
            ("eps".into(), Value::Float(self.eps)),
            ("gamma".into(), Value::Float(self.gamma)),
            ("constants".into(), constants_to_value(&self.constants)),
            ("budget".into(), opt_u64_value(self.budget)),
            ("mode".into(), mode_to_value(self.mode)),
            ("physics_threads".into(), usize_value(self.physics_threads)),
            ("record".into(), Value::Bool(self.record)),
            (
                "kernel_dispatch".into(),
                dispatch_to_value(self.kernel_dispatch),
            ),
            (
                "accumulation".into(),
                accumulation_to_value(self.accumulation),
            ),
            ("repair".into(), repair_to_value(self.repair)),
            (
                "mobility".into(),
                self.mobility
                    .as_ref()
                    .map_or(Value::Null, mobility_to_value),
            ),
            (
                "churn".into(),
                self.churn.as_ref().map_or(Value::Null, churn_to_value),
            ),
            (
                "adversary".into(),
                self.adversary
                    .as_ref()
                    .map_or(Value::Null, adversary_to_value),
            ),
        ])
    }

    /// Decodes a spec from a wire value.
    ///
    /// # Errors
    ///
    /// [`WireError`] on missing/mistyped fields or unknown enum tags.
    pub fn from_value(v: &Value) -> Result<Self, WireError> {
        let opt = |key: &str| -> Result<Option<&Value>, WireError> {
            let f = field(v, key)?;
            Ok(if f.is_null() { None } else { Some(f) })
        };
        Ok(ScenarioSpec {
            topology: topology_from_value(field(v, "topology")?)?,
            protocol: protocol_from_value(field(v, "protocol")?)?,
            alpha: f64_field(v, "alpha")?,
            beta: f64_field(v, "beta")?,
            noise: f64_field(v, "noise")?,
            eps: f64_field(v, "eps")?,
            gamma: f64_field(v, "gamma")?,
            constants: constants_from_value(field(v, "constants")?)?,
            budget: opt_u64_field(v, "budget")?,
            mode: mode_from_value(field(v, "mode")?)?,
            physics_threads: usize_field(v, "physics_threads")?,
            record: bool_field(v, "record")?,
            kernel_dispatch: dispatch_from_value(field(v, "kernel_dispatch")?)?,
            accumulation: accumulation_from_value(field(v, "accumulation")?)?,
            repair: repair_from_value(field(v, "repair")?)?,
            mobility: opt("mobility")?.map(mobility_from_value).transpose()?,
            churn: opt("churn")?.map(churn_from_value).transpose()?,
            adversary: opt("adversary")?.map(adversary_from_value).transpose()?,
        })
    }

    /// Canonical text encoding.
    pub fn encode(&self) -> String {
        self.to_value().encode()
    }

    /// Parses and decodes a spec from canonical (or any well-formed)
    /// text.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed JSON or schema mismatches.
    pub fn decode(text: &str) -> Result<Self, WireError> {
        Self::from_value(&Value::parse(text)?)
    }

    /// Rebuilds the in-process [`Scenario`] this spec describes. The
    /// caller may attach observers before `build()` — exactly what the
    /// server does with its streaming observer.
    ///
    /// # Errors
    ///
    /// [`SimError::Spec`] when the physics parameters are invalid;
    /// later validation happens at [`Scenario::build`].
    pub fn to_scenario(&self) -> Result<Scenario<Point2>, SimError> {
        let params = SinrParams::builder()
            .alpha(self.alpha)
            .beta(self.beta)
            .noise(self.noise)
            .eps(self.eps)
            .build(self.gamma)
            .map_err(|e| SimError::Spec(format!("invalid SINR parameters: {e}")))?;
        let mut sc = Scenario::new(self.topology.clone())
            .protocol(self.protocol.clone())
            .params(params)
            .constants(self.constants)
            .interference_mode(self.mode)
            .physics_threads(self.physics_threads)
            .kernel_dispatch(self.kernel_dispatch)
            .accumulation(self.accumulation)
            .repair_policy(self.repair);
        if let Some(budget) = self.budget {
            sc = sc.budget(budget);
        }
        if self.record {
            sc = sc.record_rounds();
        }
        if let Some(mobility) = self.mobility {
            sc = sc.mobility(mobility);
        }
        if let Some(churn) = self.churn {
            sc = sc.churn(churn);
        }
        if let Some(adversary) = self.adversary.clone() {
            sc = sc.adversary(adversary);
        }
        Ok(sc)
    }
}

// ---------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------

fn outcome_to_value(o: &Outcome) -> Value {
    match o {
        Outcome::Broadcast => tagged("broadcast", vec![]),
        Outcome::Coloring { coloring } => tagged(
            "coloring",
            vec![("colors".into(), coloring_to_value(coloring))],
        ),
        Outcome::Wakeup {
            first_wake,
            rounds_from_first_wake,
        } => tagged(
            "wakeup",
            vec![
                ("first_wake".into(), Value::UInt(*first_wake)),
                (
                    "rounds_from_first_wake".into(),
                    Value::UInt(*rounds_from_first_wake),
                ),
            ],
        ),
        Outcome::Consensus {
            decided,
            agreement,
            valid,
        } => tagged(
            "consensus",
            vec![
                (
                    "decided".into(),
                    Value::Array(decided.iter().map(|&d| opt_u64_value(d)).collect()),
                ),
                ("agreement".into(), Value::Bool(*agreement)),
                ("valid".into(), Value::Bool(*valid)),
            ],
        ),
        Outcome::Leader { leaders, unique } => tagged(
            "leader",
            vec![
                (
                    "leaders".into(),
                    Value::Array(leaders.iter().map(|&l| usize_value(l)).collect()),
                ),
                ("unique".into(), Value::Bool(*unique)),
            ],
        ),
        Outcome::Alert { learned_at } => tagged(
            "alert",
            vec![(
                "learned_at".into(),
                Value::Array(learned_at.iter().map(|&r| opt_u64_value(r)).collect()),
            )],
        ),
    }
}

fn opt_u64_array(v: &Value, key: &str, what: &str) -> Result<Vec<Option<u64>>, WireError> {
    let mut out = Vec::new();
    for item in array_field(v, key)? {
        if item.is_null() {
            out.push(None);
        } else {
            out.push(Some(item.as_u64().ok_or_else(|| {
                WireError::new(format!("{what} entry is not a u64 or null"))
            })?));
        }
    }
    Ok(out)
}

fn outcome_from_value(v: &Value) -> Result<Outcome, WireError> {
    Ok(match kind(v)? {
        "broadcast" => Outcome::Broadcast,
        "coloring" => Outcome::Coloring {
            coloring: coloring_from_value(field(v, "colors")?, "colors")?,
        },
        "wakeup" => Outcome::Wakeup {
            first_wake: u64_field(v, "first_wake")?,
            rounds_from_first_wake: u64_field(v, "rounds_from_first_wake")?,
        },
        "consensus" => Outcome::Consensus {
            decided: opt_u64_array(v, "decided", "decided")?,
            agreement: bool_field(v, "agreement")?,
            valid: bool_field(v, "valid")?,
        },
        "leader" => {
            let mut leaders = Vec::new();
            for l in array_field(v, "leaders")? {
                leaders.push(
                    l.as_usize()
                        .ok_or_else(|| WireError::new("leader id is not a usize"))?,
                );
            }
            Outcome::Leader {
                leaders,
                unique: bool_field(v, "unique")?,
            }
        }
        "alert" => Outcome::Alert {
            learned_at: opt_u64_array(v, "learned_at", "learned_at")?,
        },
        other => return Err(WireError::new(format!("unknown outcome kind '{other}'"))),
    })
}

fn fault_report_to_value(f: &FaultReport) -> Value {
    Value::Object(vec![
        ("kills".into(), Value::UInt(f.kills)),
        ("returns".into(), Value::UInt(f.returns)),
        ("jam_rounds".into(), Value::UInt(f.jam_rounds)),
        ("recovery_rounds".into(), opt_u64_value(f.recovery_rounds)),
        (
            "coverage".into(),
            Value::Array(
                f.coverage
                    .iter()
                    .map(|c| {
                        Value::Object(vec![
                            ("round".into(), Value::UInt(c.round)),
                            ("informed".into(), usize_value(c.informed)),
                            ("live".into(), usize_value(c.live)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn fault_report_from_value(v: &Value) -> Result<FaultReport, WireError> {
    let mut coverage = Vec::new();
    for c in array_field(v, "coverage")? {
        coverage.push(CoveragePoint {
            round: u64_field(c, "round")?,
            informed: usize_field(c, "informed")?,
            live: usize_field(c, "live")?,
        });
    }
    Ok(FaultReport {
        kills: u64_field(v, "kills")?,
        returns: u64_field(v, "returns")?,
        jam_rounds: u64_field(v, "jam_rounds")?,
        recovery_rounds: opt_u64_field(v, "recovery_rounds")?,
        coverage,
    })
}

/// A run report as a wire value (canonical field order).
pub fn run_report_to_value(r: &RunReport) -> Value {
    Value::Object(vec![
        ("seed".into(), Value::UInt(r.seed)),
        ("n".into(), usize_value(r.n)),
        ("rounds".into(), Value::UInt(r.rounds)),
        ("completed".into(), Value::Bool(r.completed)),
        ("informed".into(), usize_value(r.informed)),
        (
            "total_transmissions".into(),
            Value::UInt(r.total_transmissions),
        ),
        ("outcome".into(), outcome_to_value(&r.outcome)),
        (
            "per_round".into(),
            r.per_round.as_ref().map_or(Value::Null, |rounds| {
                Value::Array(
                    rounds
                        .iter()
                        .map(|s| {
                            Value::Object(vec![
                                ("round".into(), Value::UInt(s.round)),
                                ("transmitters".into(), usize_value(s.transmitters)),
                                ("receptions".into(), usize_value(s.receptions)),
                            ])
                        })
                        .collect(),
                )
            }),
        ),
        (
            "tx_counts".into(),
            r.tx_counts.as_ref().map_or(Value::Null, |counts| {
                Value::Array(counts.iter().map(|&c| Value::UInt(c)).collect())
            }),
        ),
        (
            "measurements".into(),
            Value::Object(
                // BTreeMap iterates in key order: deterministic bytes.
                r.measurements
                    .iter()
                    .map(|(k, &x)| (k.clone(), Value::Float(x)))
                    .collect(),
            ),
        ),
        (
            "faults".into(),
            r.faults.as_ref().map_or(Value::Null, fault_report_to_value),
        ),
    ])
}

/// Decodes a run report from a wire value.
///
/// # Errors
///
/// [`WireError`] on missing/mistyped fields or unknown enum tags.
pub fn run_report_from_value(v: &Value) -> Result<RunReport, WireError> {
    let per_round = {
        let f = field(v, "per_round")?;
        if f.is_null() {
            None
        } else {
            let mut rounds = Vec::new();
            for s in f
                .as_array()
                .ok_or_else(|| WireError::new("field 'per_round' is not an array or null"))?
            {
                rounds.push(RoundStats {
                    round: u64_field(s, "round")?,
                    transmitters: usize_field(s, "transmitters")?,
                    receptions: usize_field(s, "receptions")?,
                });
            }
            Some(rounds)
        }
    };
    let tx_counts = {
        let f = field(v, "tx_counts")?;
        if f.is_null() {
            None
        } else {
            let mut counts = Vec::new();
            for c in f
                .as_array()
                .ok_or_else(|| WireError::new("field 'tx_counts' is not an array or null"))?
            {
                counts.push(
                    c.as_u64()
                        .ok_or_else(|| WireError::new("tx count is not a u64"))?,
                );
            }
            Some(counts)
        }
    };
    let mut measurements = BTreeMap::new();
    for (k, x) in field(v, "measurements")?
        .as_object()
        .ok_or_else(|| WireError::new("field 'measurements' is not an object"))?
    {
        measurements.insert(
            k.clone(),
            x.as_f64()
                .ok_or_else(|| WireError::new(format!("measurement '{k}' is not a number")))?,
        );
    }
    let faults = {
        let f = field(v, "faults")?;
        if f.is_null() {
            None
        } else {
            Some(fault_report_from_value(f)?)
        }
    };
    Ok(RunReport {
        seed: u64_field(v, "seed")?,
        n: usize_field(v, "n")?,
        rounds: u64_field(v, "rounds")?,
        completed: bool_field(v, "completed")?,
        informed: usize_field(v, "informed")?,
        total_transmissions: u64_field(v, "total_transmissions")?,
        outcome: outcome_from_value(field(v, "outcome")?)?,
        per_round,
        tx_counts,
        measurements,
        faults,
    })
}

/// Canonical text encoding of a run report — the bytes the server
/// streams; byte-equality of two encodings is exactly report equality.
pub fn encode_run_report(r: &RunReport) -> String {
    run_report_to_value(r).encode()
}

/// Parses and decodes a run report.
///
/// # Errors
///
/// [`WireError`] on malformed JSON or schema mismatches.
pub fn decode_run_report(text: &str) -> Result<RunReport, WireError> {
    run_report_from_value(&Value::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_report() -> RunReport {
        let mut measurements = BTreeMap::new();
        measurements.insert("load/mean".to_string(), 0.125);
        measurements.insert("load/max".to_string(), 3.0);
        RunReport {
            seed: u64::MAX - 7,
            n: 40,
            rounds: 611,
            completed: true,
            informed: 39,
            total_transmissions: 12_345,
            outcome: Outcome::Broadcast,
            per_round: Some(vec![
                RoundStats {
                    round: 1,
                    transmitters: 1,
                    receptions: 3,
                },
                RoundStats {
                    round: 2,
                    transmitters: 4,
                    receptions: 0,
                },
            ]),
            tx_counts: Some(vec![7, 0, 2, 9]),
            measurements,
            faults: Some(FaultReport {
                kills: 8,
                returns: 2,
                jam_rounds: 96,
                recovery_rounds: Some(62),
                coverage: vec![
                    CoveragePoint {
                        round: 0,
                        informed: 1,
                        live: 40,
                    },
                    CoveragePoint {
                        round: 24,
                        informed: 17,
                        live: 36,
                    },
                ],
            }),
        }
    }

    #[test]
    fn run_report_roundtrip_bytes_and_value() {
        let report = full_report();
        let text = encode_run_report(&report);
        let back = decode_run_report(&text).expect("canonical report decodes");
        assert_eq!(back, report, "report value corrupted by the wire");
        assert_eq!(
            encode_run_report(&back),
            text,
            "encode -> decode -> encode not byte-identical"
        );
    }

    #[test]
    fn run_report_golden_bytes() {
        // A small report with every Option absent: the canonical bytes
        // are part of the wire contract (changing them breaks clients).
        let report = RunReport {
            seed: 2014,
            n: 3,
            rounds: 5,
            completed: false,
            informed: 2,
            total_transmissions: 9,
            outcome: Outcome::Broadcast,
            per_round: None,
            tx_counts: None,
            measurements: BTreeMap::new(),
            faults: None,
        };
        assert_eq!(
            encode_run_report(&report),
            "{\"seed\":2014,\"n\":3,\"rounds\":5,\"completed\":false,\"informed\":2,\
             \"total_transmissions\":9,\"outcome\":{\"kind\":\"broadcast\"},\
             \"per_round\":null,\"tx_counts\":null,\"measurements\":{},\"faults\":null}"
        );
    }

    #[test]
    fn outcome_variants_roundtrip() {
        let outcomes = vec![
            Outcome::Broadcast,
            Outcome::Coloring {
                coloring: Coloring::new(vec![0.5, 0.25, 0.0]),
            },
            Outcome::Wakeup {
                first_wake: 3,
                rounds_from_first_wake: 41,
            },
            Outcome::Consensus {
                decided: vec![Some(4), None, Some(4)],
                agreement: false,
                valid: false,
            },
            Outcome::Leader {
                leaders: vec![11],
                unique: true,
            },
            Outcome::Alert {
                learned_at: vec![None, Some(17)],
            },
        ];
        for outcome in outcomes {
            let v = outcome_to_value(&outcome);
            let text = v.encode();
            let back = outcome_from_value(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back, outcome);
            assert_eq!(outcome_to_value(&back).encode(), text);
        }
    }

    #[test]
    fn scenario_spec_roundtrip() {
        let mut spec = ScenarioSpec::new(
            TopologySpec::UniformSquare { n: 60, side: 2.0 },
            ProtocolSpec::ReFloodBroadcastEstimate {
                source: 0,
                nu0: 60,
                burst_rounds: 48,
            },
        );
        spec.budget = Some(600);
        spec.mode = InterferenceMode::grid_native();
        spec.record = true;
        spec.kernel_dispatch = KernelDispatch::ForceScalar;
        spec.mobility = Some(MobilitySpec::random_waypoint(0.2, 8));
        spec.churn = Some(ChurnSpec::poisson(1.0, 10.0, 8));
        spec.adversary = Some(AdversarySpec::cut_vertex_kill(0.2, 1, 24));
        let text = spec.encode();
        let back = ScenarioSpec::decode(&text).expect("canonical spec decodes");
        assert_eq!(back, spec);
        assert_eq!(back.encode(), text, "spec encode not byte-stable");
        // And it still builds a runnable scenario.
        let report = back.to_scenario().unwrap().build().unwrap().run(7).unwrap();
        assert_eq!(report.seed, 7);
        assert!(report.per_round.is_some(), "record knob survived the wire");
    }

    #[test]
    fn kernel_knobs_roundtrip_and_reject_unknown_tags() {
        let mut spec = ScenarioSpec::new(
            TopologySpec::UniformSquare { n: 20, side: 1.0 },
            ProtocolSpec::NoSBroadcast { source: 0 },
        );
        spec.budget = Some(50);
        assert_eq!(spec.kernel_dispatch, KernelDispatch::Auto);
        assert_eq!(spec.accumulation, Accumulation::F64);
        spec.kernel_dispatch = KernelDispatch::ForceScalar;
        spec.accumulation = Accumulation::F32;
        let text = spec.encode();
        assert!(text.contains("\"kernel_dispatch\":\"scalar\""));
        assert!(text.contains("\"accumulation\":\"f32\""));
        let back = ScenarioSpec::decode(&text).unwrap();
        assert_eq!(back, spec);
        // The F32 build()-rejection applies to wire-decoded scenarios too.
        let sim = back.to_scenario().unwrap().record_rounds().build();
        assert!(matches!(sim, Err(SimError::Spec(_))));
        assert!(back.to_scenario().unwrap().build().is_ok());
        for bad in [
            text.replace(
                "\"kernel_dispatch\":\"scalar\"",
                "\"kernel_dispatch\":\"avx9\"",
            ),
            text.replace("\"accumulation\":\"f32\"", "\"accumulation\":\"f16\""),
        ] {
            assert!(ScenarioSpec::decode(&bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn scenario_spec_covers_every_protocol_tag() {
        // Each ProtocolSpec variant must survive the wire: `name()` is
        // the tag, so a new variant without a codec arm fails here.
        let coloring = Coloring::new(vec![0.5, 0.25]);
        let protocols = vec![
            ProtocolSpec::NoSBroadcast { source: 0 },
            ProtocolSpec::NoSBroadcastWithEstimate { source: 0, nu: 8 },
            ProtocolSpec::SBroadcast { source: 1 },
            ProtocolSpec::SBroadcastWithEstimate { source: 1, nu: 9 },
            ProtocolSpec::Coloring,
            ProtocolSpec::DaumBroadcast {
                source: 0,
                granularity: Some(2.5),
            },
            ProtocolSpec::DaumBroadcast {
                source: 0,
                granularity: None,
            },
            ProtocolSpec::FloodBroadcast { source: 0, p: 0.1 },
            ProtocolSpec::LocalBroadcast { source: 2 },
            ProtocolSpec::ReFloodBroadcast {
                source: 0,
                p: 0.25,
                burst_rounds: 24,
            },
            ProtocolSpec::ReFloodBroadcastEstimate {
                source: 0,
                nu0: 2,
                burst_rounds: 48,
            },
            ProtocolSpec::NoSBroadcastOnlineEstimate { source: 0, nu0: 2 },
            ProtocolSpec::SBroadcastOnlineEstimate { source: 0, nu0: 4 },
            ProtocolSpec::GpsOracleBroadcast { source: 0 },
            ProtocolSpec::AdhocWakeup {
                schedule: WakeSchedule::AllAt(0),
            },
            ProtocolSpec::AdhocWakeup {
                schedule: WakeSchedule::Selected(vec![(0, 3), (4, 1)]),
            },
            ProtocolSpec::AdhocWakeup {
                schedule: WakeSchedule::Staggered { start: 2, gap: 5 },
            },
            ProtocolSpec::EstablishedWakeup {
                coloring: coloring.clone(),
                initiators: vec![true, false],
            },
            ProtocolSpec::Consensus {
                values: vec![3, 1],
                bits: 2,
                d_bound: 4,
            },
            ProtocolSpec::LeaderElection { d_bound: 3 },
            ProtocolSpec::Alert {
                coloring,
                alerts: vec![(0, 5)],
                d_bound: 4,
            },
        ];
        for protocol in protocols {
            let v = protocol_to_value(&protocol);
            let back = protocol_from_value(&Value::parse(&v.encode()).unwrap()).unwrap();
            assert_eq!(back, protocol);
        }
    }

    #[test]
    fn scenario_spec_covers_every_topology_tag() {
        let topologies = vec![
            TopologySpec::UniformSquare { n: 4, side: 1.0 },
            TopologySpec::ConnectedSquare { n: 4, side: 1.0 },
            TopologySpec::ConnectedSquareDensity {
                n: 4,
                density: 40.0,
            },
            TopologySpec::UniformDisk { n: 4, radius: 2.0 },
            TopologySpec::Lattice {
                rows: 2,
                cols: 2,
                spacing: 0.5,
            },
            TopologySpec::JitteredLattice {
                rows: 2,
                cols: 2,
                spacing: 0.5,
                amplitude: 0.1,
            },
            TopologySpec::UniformLine { n: 4, gap: 0.5 },
            TopologySpec::HalvingLine {
                n: 4,
                first_gap: 0.9,
                ratio: 0.5,
                min_gap: 0.01,
            },
            TopologySpec::GranularityLine {
                n: 4,
                max_gap: 0.9,
                rs_target: 8.0,
                min_gap: 0.01,
            },
            TopologySpec::GranularityLineFixedD {
                n: 4,
                max_gap: 0.9,
                rs_target: 8.0,
                d_hops: 3,
                min_gap: 0.01,
            },
            TopologySpec::ClusterChain {
                diameter: 3,
                per_cluster: 8,
            },
            TopologySpec::GaussianClusters {
                k: 2,
                per_cluster: 4,
                side: 2.0,
                sigma: 0.1,
            },
            TopologySpec::CoreAndSatellites {
                core_n: 4,
                sat_n: 2,
                core_radius: 0.5,
                sat_distance: 2.0,
            },
            TopologySpec::Ring { n: 6, radius: 1.0 },
            TopologySpec::Bridge {
                blob_n: 4,
                corridor_n: 2,
                blob_side: 1.0,
            },
            TopologySpec::TwoTier {
                dense_n: 4,
                ratio: 2,
                side: 1.5,
            },
        ];
        for topology in topologies {
            let v = topology_to_value(&topology);
            let back = topology_from_value(&Value::parse(&v.encode()).unwrap()).unwrap();
            assert_eq!(back, topology);
        }
    }

    #[test]
    fn malformed_specs_rejected() {
        assert!(ScenarioSpec::decode("not json").is_err());
        assert!(ScenarioSpec::decode("{}").is_err());
        let mut spec = ScenarioSpec::new(
            TopologySpec::UniformSquare { n: 4, side: 1.0 },
            ProtocolSpec::SBroadcast { source: 0 },
        )
        .encode();
        // Corrupt the protocol tag.
        spec = spec.replace("s-broadcast", "no-such-protocol");
        assert!(ScenarioSpec::decode(&spec).is_err());
        assert!(decode_run_report("{\"seed\":1}").is_err());
    }
}
