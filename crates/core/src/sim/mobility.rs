//! Declarative mobility: a motion model plus an epoch length.
//!
//! A [`MobilitySpec`] makes a scenario's topology *dynamic*: the run
//! seed materializes the epoch-0 deployment as usual, then every
//! `epoch_rounds` rounds a [`sinr_netgen::mobility::Mobility`] state —
//! seeded from the run seed on its own stream, confined to the bounding
//! box of the initial deployment — moves the stations and the network
//! reindexes in place. Like everything else in a scenario, the whole
//! trajectory is a pure function of the run seed, so mobile sweeps
//! replay bit-for-bit at any thread count.

use sinr_netgen::mobility::MobilityModel;

/// A mobility model and the number of rounds between motion epochs.
///
/// # Example
///
/// ```
/// use sinr_core::sim::{MobilitySpec, ProtocolSpec, Scenario, TopologySpec};
///
/// let sim = Scenario::new(TopologySpec::UniformSquare { n: 60, side: 2.0 })
///     .protocol(ProtocolSpec::FloodBroadcast { source: 0, p: 0.3 })
///     .mobility(MobilitySpec::random_waypoint(0.2, 8))
///     .budget(200)
///     .build()?;
/// assert_eq!(sim.run(7)?, sim.run(7)?); // mobile runs replay bit-for-bit
/// # Ok::<(), sinr_core::sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilitySpec {
    /// How stations move at each epoch boundary.
    pub model: MobilityModel,
    /// Rounds per epoch (must be at least 1; the topology is frozen
    /// within an epoch).
    pub epoch_rounds: u64,
}

impl MobilitySpec {
    /// A spec from an explicit model.
    pub fn new(model: MobilityModel, epoch_rounds: u64) -> Self {
        MobilitySpec {
            model,
            epoch_rounds,
        }
    }

    /// Random-waypoint motion at `speed` units per epoch, no pause.
    pub fn random_waypoint(speed: f64, epoch_rounds: u64) -> Self {
        MobilitySpec::new(
            MobilityModel::RandomWaypoint {
                speed,
                pause_epochs: 0,
            },
            epoch_rounds,
        )
    }

    /// Constant-velocity drift at `speed` units per epoch, reflecting off
    /// the deployment's bounding box.
    pub fn drift(speed: f64, epoch_rounds: u64) -> Self {
        MobilitySpec::new(MobilityModel::Drift { speed }, epoch_rounds)
    }

    /// Teleport churn: each epoch every station relocates uniformly with
    /// probability `fraction`.
    pub fn teleport_churn(fraction: f64, epoch_rounds: u64) -> Self {
        MobilitySpec::new(MobilityModel::TeleportChurn { fraction }, epoch_rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ProtocolSpec, Scenario, SimError, TopologySpec};

    #[test]
    fn invalid_model_parameters_fail_at_build_not_run() {
        for spec in [
            MobilitySpec::drift(0.0, 4),
            MobilitySpec::random_waypoint(f64::NAN, 4),
            MobilitySpec::teleport_churn(1.5, 4),
        ] {
            let built = Scenario::new(TopologySpec::UniformSquare { n: 10, side: 2.0 })
                .protocol(ProtocolSpec::FloodBroadcast { source: 0, p: 0.5 })
                .mobility(spec)
                .budget(10)
                .build();
            match built {
                Err(err) => assert!(matches!(err, SimError::Spec(_)), "{spec:?}: {err}"),
                Ok(_) => panic!("{spec:?}: build accepted an invalid model"),
            }
        }
    }

    #[test]
    fn constructors_fill_the_model() {
        assert_eq!(
            MobilitySpec::random_waypoint(0.5, 4).model,
            MobilityModel::RandomWaypoint {
                speed: 0.5,
                pause_epochs: 0
            }
        );
        assert_eq!(
            MobilitySpec::drift(0.2, 2).model,
            MobilityModel::Drift { speed: 0.2 }
        );
        let spec = MobilitySpec::teleport_churn(0.1, 1);
        assert_eq!(spec.model, MobilityModel::TeleportChurn { fraction: 0.1 });
        assert_eq!(spec.epoch_rounds, 1);
    }
}
