//! The `Scenario` builder: declarative, replayable simulations with
//! parallel seed sweeps.
//!
//! This module supersedes the free-function runner zoo of [`crate::run`]
//! (kept as deprecated wrappers). A scenario is built from four
//! declarative pieces — a topology, a protocol, the tuned constants and
//! the SINR parameters — and produces a [`Simulation`] whose every run is
//! a **pure deterministic function of one explicit `u64` seed**: the seed
//! derives the topology stream (for generated families), the per-node
//! protocol randomness, and — when [`Scenario::mobility`] makes the
//! topology dynamic — the motion trajectory, so any run of any sweep can
//! be replayed bit-for-bit, regardless of how many worker threads
//! executed it.
//!
//! # Mobile topologies
//!
//! [`Scenario::mobility`] attaches a [`MobilitySpec`] (a
//! [`MobilityModel`] from [`sinr_netgen::mobility`] plus an epoch
//! length): every `epoch_rounds` rounds the stations move and the
//! network's spatial index rebuilds **in place** — allocation-reusing,
//! bitwise identical to a from-scratch build (`tests/mobility_equivalence.rs`)
//! — while the reception pipeline keeps its zero-steady-state-allocation
//! guarantee between epochs (`crates/phy/tests/oracle_alloc.rs`). Mobile
//! runs compose with [`Simulation::sweep`] and
//! [`Scenario::physics_threads`] under the same determinism contract as
//! static ones.
//!
//! ```
//! use sinr_core::sim::{ProtocolSpec, Scenario, TopologySpec};
//! use sinr_core::Constants;
//!
//! let sim = Scenario::new(TopologySpec::ClusterChain { diameter: 3, per_cluster: 8 })
//!     .protocol(ProtocolSpec::SBroadcast { source: 0 })
//!     .constants(Constants::tuned())
//!     .budget(2_000_000)
//!     .build()?;
//! let report = sim.run(42)?;
//! assert!(report.completed);
//! let sweep = sim.sweep(&[1, 2, 3])?;        // parallel, deterministic
//! assert_eq!(sweep.runs.len(), 3);
//! # Ok::<(), sinr_core::sim::SimError>(())
//! ```
//!
//! # Dynamic populations
//!
//! [`Scenario::churn`] attaches a [`ChurnSpec`] (a [`ChurnModel`] from
//! [`sinr_netgen::churn`] plus an epoch length): every `epoch_rounds`
//! rounds stations die (geometric lifetimes), rejoin at fresh uniform
//! positions, and spawn (Poisson arrivals) — and the network rebuilds its
//! spatial index **and communication graph** in place, bit-identical to
//! fresh builds of the surviving population (`tests/churn_equivalence.rs`).
//! Station indices are stable: dead stations keep their rows in every
//! per-station vector (tombstones), spawns append, so reports stay
//! index-aligned across the whole run. Dead stations neither transmit
//! nor receive, never block completion, and their RNG streams freeze
//! while they are down. Protocols observe the lifecycle through the
//! `on_join` / `on_leave` / `on_topology_change` hooks — the
//! mobility-aware [`ProtocolSpec::ReFloodBroadcast`] uses them to re-seed
//! flooding exactly when the epoch-refreshed graph reports newly joined
//! stations or a reconnected component. Churn composes with
//! [`Scenario::mobility`] (independent epoch schedules),
//! [`Simulation::sweep`] and [`Scenario::physics_threads`] under the same
//! determinism contract as everything else; the churn schedule derives
//! from the run seed on its own stream, making it a first-class,
//! independently replayable input. Only protocols whose per-station goal
//! makes sense for mid-run arrivals accept churn
//! ([`ProtocolSpec::supports_churn`]); invalid churn parameters (zero
//! lifetimes, negative rates) and unsupported combinations (e.g. the
//! GPS-oracle baseline) fail at [`Scenario::build`] with
//! [`SimError::Spec`] instead of panicking inside sweep workers.
//!
//! ```
//! use sinr_core::sim::{ChurnSpec, MobilitySpec, ProtocolSpec, Scenario, TopologySpec};
//!
//! let sim = Scenario::new(TopologySpec::UniformSquare { n: 80, side: 2.5 })
//!     .protocol(ProtocolSpec::ReFloodBroadcast { source: 0, p: 0.25, burst_rounds: 24 })
//!     .mobility(MobilitySpec::random_waypoint(0.2, 8))
//!     .churn(ChurnSpec::poisson(1.0, 10.0, 8))
//!     .budget(400)
//!     .build()?;
//! assert_eq!(sim.run(7)?, sim.run(7)?); // churned runs replay bit-for-bit
//! # Ok::<(), sinr_core::sim::SimError>(())
//! ```
//!
//! # Adversaries and degradation
//!
//! [`Scenario::adversary`] attaches an [`AdversarySpec`] (one or more
//! [`AdversaryModel`]s plus an epoch length): every `epoch_rounds`
//! rounds the fault plans run against the **refreshed** communication
//! graph and inject targeted faults — cut-vertex-targeted kills (the
//! worst-case attack on connectivity), phase-synchronized crash bursts
//! (timed via the protocols' `phase_hint`), jamming stations
//! (unconditional noise, no physics changes), and blackout outages
//! whose victims return at their original positions. Kill-type faults
//! flow through the same transactional delta path as churn, so the
//! whole determinism contract carries over: adversarial runs are pure
//! functions of their seed, byte-identical at any physics-thread or
//! sweep-worker count, and compose with churn and mobility (a station
//! the churn schedule already killed at the same boundary is simply
//! not double-killed).
//!
//! Degradation is *measured*, not just injected: faulted runs fill
//! [`RunReport::faults`] with fault totals, a coverage-over-time curve
//! (one [`CoveragePoint`] per adversary boundary) and the
//! re-convergence time after the last fault. On the protocol side, the
//! `*OnlineEstimate` variants ([`crate::estimate`]) replace the
//! paper's fixed population estimate with an online, one-sided ν̂ that
//! grows on in-burst silence runs — the protocol-visible signature of
//! collision stalls — and back off their estimate window when churn
//! invalidates the statistics, degrading latency instead of coverage.
//!
//! ```
//! use sinr_core::sim::{AdversarySpec, ProtocolSpec, Scenario, TopologySpec};
//!
//! let sim = Scenario::new(TopologySpec::UniformSquare { n: 40, side: 2.0 })
//!     .protocol(ProtocolSpec::ReFloodBroadcastEstimate { source: 0, nu0: 40, burst_rounds: 48 })
//!     .adversary(AdversarySpec::cut_vertex_kill(0.2, 1, 24)) // 20% of live stations per epoch
//!     .budget(600)
//!     .build()?;
//! let report = sim.run(11)?;
//! assert_eq!(report, sim.run(11)?); // replays bit-for-bit
//! let faults = report.faults.expect("adversarial runs carry fault accounting");
//! assert!(!faults.coverage.is_empty()); // degradation curve sampled per boundary
//! # Ok::<(), sinr_core::sim::SimError>(())
//! ```
//!
//! # Protocol registry → paper map
//!
//! | [`ProtocolSpec`] variant | paper result |
//! |---|---|
//! | [`ProtocolSpec::Coloring`] | Section 3, Fact 7: `StabilizeProbability` in `O(log² n)` rounds, invariants Lemma 1 & 2 |
//! | [`ProtocolSpec::NoSBroadcast`] | Theorem 1: broadcast in `O(D log² n)` without spontaneous wake-up |
//! | [`ProtocolSpec::NoSBroadcastWithEstimate`] | Section 1.1: same with a population estimate `ν ≥ n`, `O(D log² ν)` |
//! | [`ProtocolSpec::SBroadcast`] | Theorem 2: broadcast in `O(D log n + log² n)` with spontaneous wake-up |
//! | [`ProtocolSpec::SBroadcastWithEstimate`] | Section 1.1: same with estimate `ν`, `O(D log ν + log² ν)` |
//! | [`ProtocolSpec::DaumBroadcast`] | the Daum et al. decay baseline the paper compares against (granularity-dependent) |
//! | [`ProtocolSpec::FloodBroadcast`] | the fixed-probability strawman of the introduction |
//! | [`ProtocolSpec::LocalBroadcast`] | adaptive local-broadcast-style flooding baseline |
//! | [`ProtocolSpec::ReFloodBroadcast`] | mobility/churn-aware re-flooding variant (re-seeds on topology change; beyond the paper's static model) |
//! | [`ProtocolSpec::ReFloodBroadcastEstimate`] | re-flooding driven by an online ν̂ (graceful degradation under faults; beyond the paper's static model) |
//! | [`ProtocolSpec::NoSBroadcastOnlineEstimate`] | Theorem 1 phase schedule rebuilt per station as an online ν̂ grows |
//! | [`ProtocolSpec::SBroadcastOnlineEstimate`] | Theorem 2 with the dissemination probability re-tuned to an online ν̂ |
//! | [`ProtocolSpec::GpsOracleBroadcast`] | the "geometry known" upper bound (references [14, 15] strengthened to an oracle) |
//! | [`ProtocolSpec::AdhocWakeup`] | Section 5: ad hoc wake-up in `O(D log² n)` from the first wake-up |
//! | [`ProtocolSpec::EstablishedWakeup`] | Fact 11: wake-up over an established coloring in `O(D log n + log² n)` |
//! | [`ProtocolSpec::Consensus`] | Section 5: consensus in `O((D log n + log² n) log x)` |
//! | [`ProtocolSpec::LeaderElection`] | Section 5: leader election in `O(D log² n + log³ n)` whp |
//! | [`ProtocolSpec::Alert`] | Section 1.3: the alert application over the coloring backbone |
//!
//! # Simulation as a service
//!
//! The [`wire`] module makes scenarios and reports *data*: a
//! [`ScenarioSpec`] captures every plain-data builder knob (topology,
//! protocol, SINR parameters, constants, budget, interference mode,
//! dynamics, repair policy), and [`encode_run_report`] /
//! [`decode_run_report`] carry [`RunReport`]s — including
//! [`RunReport::faults`] — as **canonical JSON**: fields in fixed schema
//! order, no whitespace, `u64`-exact integers, shortest-float notation,
//! enums as `{"kind":"<tag>",...}` objects (protocol tags are
//! [`ProtocolSpec::name`]). Canonical means encode ∘ decode ∘ encode is
//! byte-identity, so the determinism contract extends across process
//! boundaries: two reports are equal iff their wire bytes are equal.
//!
//! `crates/serve` builds a persistent simulation server on this seam.
//! Its line-delimited protocol (one canonical-JSON object per `\n`
//! -terminated line) is, client → server:
//!
//! ```text
//! request   = submit | attach | ping | shutdown
//! submit    = {"op":"submit","spec":<ScenarioSpec>,"seeds":[u64...],"stream":bool}
//! attach    = {"op":"attach","job":uint}
//! ping      = {"op":"ping"}
//! shutdown  = {"op":"shutdown"}
//! ```
//!
//! and server → client:
//!
//! ```text
//! event     = accepted | round | report | done | pong | error
//! accepted  = {"event":"accepted","job":uint,"trials":uint}
//! round     = {"event":"round","job":uint,"seed":uint,"round":uint,
//!              "transmitters":uint,"receptions":uint,"informed":uint}
//! report    = {"event":"report","job":uint,"seed":uint,"report":<RunReport>}
//! done      = {"event":"done","job":uint,"dropped_rounds":uint,"degraded":bool}
//! pong      = {"event":"pong"}
//! error     = {"event":"error","message":string}
//! ```
//!
//! Live `round` events flow through the lossy bounded [`StreamObserver`]
//! / [`RoundSink`] pair: a slow subscriber drops rounds (counted in
//! `done.dropped_rounds`) rather than stalling the engine, and always
//! still receives every `report` event — whose embedded report bytes are
//! byte-identical to an in-process [`Simulation::run`] of the same spec
//! and seed at any number of concurrent subscribers
//! (`crates/serve/tests/server_determinism.rs`).
//!
//! # Determinism contract
//!
//! [`Simulation::run`] with equal seeds yields equal [`RunReport`]s;
//! [`Simulation::sweep`] yields the same reports in the same order for any
//! worker-thread count (each seed's run shares no mutable state with any
//! other), and [`Scenario::physics_threads`] — which shards each round's
//! physics accumulate stage inside a trial — leaves every report
//! byte-identical at any thread count too (the reception pipeline's
//! sharding contract). The two compose under one machine thread budget,
//! resolved once per [`Simulation`]. Observers are constructed fresh per
//! run, so they cannot leak state across seeds either. The golden tests
//! in `tests/scenario_golden.rs` pin the sweep properties (plus
//! field-for-field agreement with the legacy `run_*` runners), and
//! `tests/mode_determinism.rs` pins physics-thread invariance across
//! every interference mode — for static and mobile topologies alike.

mod adversary;
mod churn;
mod mobility;
mod observer;
mod report;
mod scenario;
mod spec;
mod topology;
pub mod wire;

pub use adversary::{AdversaryModel, AdversarySpec};
pub use churn::ChurnSpec;
pub use mobility::MobilitySpec;
pub use observer::{LoadObserver, Observer, StreamObserver};
pub use report::{CoveragePoint, FaultReport, Outcome, RunReport, SweepReport};
pub use scenario::{Scenario, SimError, Simulation};
pub use spec::ProtocolSpec;
pub use topology::{Topology, TopologySpec};
pub use wire::{decode_run_report, encode_run_report, ScenarioSpec, WireError};

// The motion and lifecycle models the dynamic specs name, re-exported so
// scenario code needs no direct `sinr_netgen` import.
pub use sinr_geometry::RepairPolicy;
// The kernel knobs the scenario builder takes, re-exported so scenario
// code needs no direct `sinr_phy` import.
pub use sinr_netgen::churn::ChurnModel;
pub use sinr_netgen::mobility::MobilityModel;
pub use sinr_phy::{Accumulation, KernelDispatch};

// The streaming seam `StreamObserver` plugs into, re-exported so server
// code reaches the whole observer/sink pair through one crate.
pub use sinr_runtime::{EngineArena, RoundEvent, RoundSink};
