//! Pluggable per-round observation hooks.

use sinr_runtime::{RoundEvent, RoundSink, RoundStats};

use super::RunReport;

/// A per-run observation hook.
///
/// A fresh observer is created for every run (see
/// [`crate::sim::Scenario::observe`]), so sweeps stay deterministic and
/// thread-safe: observers never share state across seeds.
pub trait Observer: Send {
    /// Called once before the first round with the station count.
    fn begin(&mut self, _n: usize) {}

    /// Called after every executed round with the round's statistics and
    /// the number of stations that currently satisfy the protocol's
    /// per-station goal (informed / awake / decided).
    fn on_round(&mut self, stats: &RoundStats, informed: usize);

    /// Called once after the run; typically records scalars into
    /// [`RunReport::measurements`].
    fn finish(&mut self, report: &mut RunReport);
}

/// Built-in observer measuring channel load: peak simultaneous
/// transmitters, and the round by which half the stations were reached.
///
/// Records `peak_transmitters`, and `half_coverage_round` when coverage
/// reached `n/2` during the run.
#[derive(Debug, Default)]
pub struct LoadObserver {
    n: usize,
    peak: usize,
    half_round: Option<u64>,
}

impl LoadObserver {
    /// Creates the observer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for LoadObserver {
    fn begin(&mut self, n: usize) {
        self.n = n;
    }

    fn on_round(&mut self, stats: &RoundStats, informed: usize) {
        self.peak = self.peak.max(stats.transmitters);
        if self.half_round.is_none() && informed * 2 >= self.n {
            self.half_round = Some(stats.round);
        }
    }

    fn finish(&mut self, report: &mut RunReport) {
        report
            .measurements
            .insert("peak_transmitters".into(), self.peak as f64);
        if let Some(r) = self.half_round {
            report
                .measurements
                .insert("half_coverage_round".into(), r as f64);
        }
    }
}

/// Observer that streams one [`RoundEvent`] per executed round into a
/// lossy bounded [`RoundSink`] — the engine side of the `sinr-serve`
/// live-trace fan-out.
///
/// `offer` never blocks, so a slow (or departed) subscriber cannot stall
/// the run: the event is dropped and counted in the sink, and the
/// subscriber degrades to report-only. Because events are views of
/// already-resolved rounds, drops cannot affect the report — the
/// determinism contract is untouched.
#[derive(Debug)]
pub struct StreamObserver {
    seed: u64,
    sink: RoundSink<RoundEvent>,
}

impl StreamObserver {
    /// Wraps a sink; `seed` stamps every event with the run it belongs to.
    pub fn new(seed: u64, sink: RoundSink<RoundEvent>) -> Self {
        StreamObserver { seed, sink }
    }
}

impl Observer for StreamObserver {
    fn on_round(&mut self, stats: &RoundStats, informed: usize) {
        self.sink.offer(RoundEvent {
            seed: self.seed,
            round: stats.round,
            transmitters: stats.transmitters,
            receptions: stats.receptions,
            informed,
        });
    }

    fn finish(&mut self, _report: &mut RunReport) {}
}
