//! The builder, the simulation, and the deterministic execution engine.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use sinr_geometry::{MetricPoint, Point2, RepairPolicy};
use sinr_netgen::churn::ChurnProcess;
use sinr_netgen::mobility::Mobility;
use sinr_phy::{Accumulation, InterferenceMode, KernelDispatch, Network, NetworkError, SinrParams};
use sinr_runtime::{derive_seed, node_rng, Engine, EngineArena, Protocol};

use crate::baselines::{DaumBroadcastNode, FloodNode, LocalBroadcastNode};
use crate::broadcast::{NoSBroadcastNode, SBroadcastNode};
use crate::consensus::ConsensusNode;
use crate::constants::Constants;
use crate::leader::LeaderNode;
use crate::stabilize::StabilizeProtocol;
use crate::verify::Coloring;
use crate::wakeup::{AdhocWakeupNode, EstablishedWakeupNode};

use super::{
    AdversarySpec, ChurnSpec, CoveragePoint, FaultReport, MobilitySpec, Observer, Outcome,
    ProtocolSpec, RunReport, SweepReport, Topology,
};

/// Stream id under which run seeds derive their topology-generation seed
/// (decorrelated from the per-node protocol streams, which use the run
/// seed directly — matching the legacy runners bit-for-bit on explicit
/// topologies).
const TOPOLOGY_STREAM: u64 = 0x544F_504F; // "TOPO"

/// Stream id under which run seeds derive their mobility-trajectory seed
/// (decorrelated from both the topology stream and the per-node protocol
/// streams, so adding mobility never perturbs either).
const MOBILITY_STREAM: u64 = 0x4D4F_4249; // "MOBI"

/// Stream id under which run seeds derive their churn-schedule seed (its
/// own stream, so adding churn perturbs neither the topology, the
/// per-node randomness, nor the mobility trajectory — the seeded churn
/// schedule is a first-class, independently replayable input).
const CHURN_STREAM: u64 = 0x4348_5552; // "CHUR"

/// Stream id under which run seeds derive their adversary seeds (one
/// per composed model, so arming or re-ordering fault models perturbs
/// no other stream and composed models draw independently).
const ADVERSARY_STREAM: u64 = 0x4144_5652; // "ADVR"

/// Everything that can go wrong building or running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Network construction failed.
    Network(NetworkError),
    /// A generated topology could not realise its parameters.
    Topology(String),
    /// The scenario has no protocol.
    MissingProtocol,
    /// The protocol runs until a goal predicate holds, so it needs an
    /// explicit round budget.
    MissingBudget,
    /// The protocol inputs do not fit the materialized network.
    Spec(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Network(e) => write!(f, "network construction failed: {e}"),
            SimError::Topology(msg) => write!(f, "topology generation failed: {msg}"),
            SimError::MissingProtocol => write!(f, "scenario has no protocol; call .protocol(...)"),
            SimError::MissingBudget => {
                write!(f, "protocol needs a round budget; call .budget(max_rounds)")
            }
            SimError::Spec(msg) => write!(f, "protocol spec mismatch: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<NetworkError> for SimError {
    fn from(e: NetworkError) -> Self {
        SimError::Network(e)
    }
}

type ObserverFactory = Arc<dyn Fn() -> Box<dyn Observer> + Send + Sync>;

/// Builder for a reproducible simulation: topology + protocol + constants
/// + SINR parameters + budget (see the [`crate::sim`] module docs).
pub struct Scenario<P: MetricPoint = Point2> {
    topology: Arc<dyn Topology<P>>,
    protocol: Option<ProtocolSpec>,
    params: SinrParams,
    consts: Constants,
    budget: Option<u64>,
    mode: InterferenceMode,
    record: bool,
    physics_threads: usize,
    mobility: Option<MobilitySpec>,
    churn: Option<ChurnSpec>,
    adversary: Option<AdversarySpec>,
    repair: RepairPolicy,
    dispatch: KernelDispatch,
    accumulation: Accumulation,
    observers: Vec<ObserverFactory>,
}

impl<P: MetricPoint> Clone for Scenario<P> {
    fn clone(&self) -> Self {
        Scenario {
            topology: Arc::clone(&self.topology),
            protocol: self.protocol.clone(),
            params: self.params,
            consts: self.consts,
            budget: self.budget,
            mode: self.mode,
            record: self.record,
            physics_threads: self.physics_threads,
            mobility: self.mobility,
            churn: self.churn,
            adversary: self.adversary.clone(),
            repair: self.repair,
            dispatch: self.dispatch,
            accumulation: self.accumulation,
            observers: self.observers.clone(),
        }
    }
}

impl<P: MetricPoint> Scenario<P> {
    /// Starts a scenario over `topology` — a [`super::TopologySpec`] for
    /// generated families, or a `Vec` of explicit points (any metric).
    ///
    /// Defaults: planar SINR parameters, [`Constants::tuned`], exact
    /// interference, no trace, no budget.
    pub fn new(topology: impl Topology<P> + 'static) -> Self {
        Scenario {
            topology: Arc::new(topology),
            protocol: None,
            params: SinrParams::default_plane(),
            consts: Constants::tuned(),
            budget: None,
            mode: InterferenceMode::Exact,
            record: false,
            physics_threads: 1,
            mobility: None,
            churn: None,
            adversary: None,
            repair: RepairPolicy::default(),
            dispatch: KernelDispatch::default(),
            accumulation: Accumulation::default(),
            observers: Vec::new(),
        }
    }

    /// Sets the protocol to run.
    #[must_use]
    pub fn protocol(mut self, spec: ProtocolSpec) -> Self {
        self.protocol = Some(spec);
        self
    }

    /// Sets the algorithm constants (default [`Constants::tuned`]).
    #[must_use]
    pub fn constants(mut self, consts: Constants) -> Self {
        self.consts = consts;
        self
    }

    /// Sets the SINR parameters (default [`SinrParams::default_plane`]).
    #[must_use]
    pub fn params(mut self, params: SinrParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the round budget. Required for goal-driven protocols
    /// (broadcasts, wake-up, alert); for fixed-schedule protocols
    /// (coloring, consensus, leader election) it optionally *caps* the
    /// schedule.
    #[must_use]
    pub fn budget(mut self, max_rounds: u64) -> Self {
        self.budget = Some(max_rounds);
        self
    }

    /// Sets the interference-evaluation fidelity (default exact physics).
    #[must_use]
    pub fn interference_mode(mut self, mode: InterferenceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Switches to the grid-native fast physics
    /// ([`InterferenceMode::grid_native`]): exact decode decisions with a
    /// per-cell approximate interference tail — the recommended fidelity
    /// for large sweeps (see the `sinr-phy` crate docs for measured
    /// cost/accuracy numbers). The default remains exact physics.
    #[must_use]
    pub fn fast_physics(self) -> Self {
        self.interference_mode(InterferenceMode::grid_native())
    }

    /// Shards each round's physics accumulate stage across up to `n`
    /// scoped worker threads (default 1; `0` is clamped to 1).
    ///
    /// Results are **bitwise identical at any thread count** (the
    /// reception pipeline's sharding contract, pinned by
    /// `tests/mode_determinism.rs`), so this only trades wall-clock for
    /// cores. It composes with [`Simulation::sweep`] under one machine
    /// thread budget: the auto-sized sweep runs
    /// `budget / physics_threads` concurrent trials, each resolving
    /// rounds on `physics_threads` threads, so the composition stays
    /// within the budget whenever `n` itself does. Like
    /// [`Simulation::sweep_with_threads`], the value is taken as given —
    /// asking for more physics threads than the machine has cores
    /// oversubscribes by exactly that choice (the results still do not
    /// change). Prefer sweep parallelism for many small trials and
    /// physics threads for few large ones (≳10⁴ stations in grid-native
    /// mode).
    #[must_use]
    pub fn physics_threads(mut self, n: usize) -> Self {
        self.physics_threads = n.max(1);
        self
    }

    /// Makes the topology **dynamic**: every [`MobilitySpec::epoch_rounds`]
    /// rounds the stations move under the spec's model
    /// ([`sinr_netgen::mobility`]) and the network reindexes in place —
    /// allocation-reusing, with the reception pipeline's zero-allocation
    /// guarantee intact between epochs.
    ///
    /// The trajectory is seeded from the run seed on its own stream, so
    /// mobile runs stay pure functions of their seed and compose with
    /// [`Simulation::sweep`] and [`Scenario::physics_threads`] with
    /// byte-identical reports at any thread count (pinned by
    /// `tests/mode_determinism.rs`). Motion is confined to the bounding
    /// box of the deployment the seed materializes.
    ///
    /// Protocols that consume geometry at setup keep their epoch-0 view:
    /// [`ProtocolSpec::DaumBroadcast`] with an implicit granularity takes
    /// `R_s` from the initial deployment (pass `granularity` explicitly
    /// to control the mobile baseline), and the non-engine-driven
    /// [`ProtocolSpec::GpsOracleBroadcast`] — whose whole schedule is
    /// precomputed from frozen geometry — is rejected at
    /// [`Scenario::build`].
    #[must_use]
    pub fn mobility(mut self, spec: MobilitySpec) -> Self {
        self.mobility = Some(spec);
        self
    }

    /// Makes the **population** dynamic: every
    /// [`ChurnSpec::epoch_rounds`] rounds a seed-derived
    /// [`sinr_netgen::churn::ChurnProcess`] kills, rejoins and spawns
    /// stations, and the network rebuilds its spatial index and
    /// communication graph in place. Station indices are stable
    /// (tombstones; spawns append), dead stations neither transmit nor
    /// receive, and protocols observe the lifecycle through
    /// `on_join`/`on_leave`/`on_topology_change`.
    ///
    /// The schedule is seeded from the run seed on its own stream, so
    /// churned runs stay pure functions of their seed and compose with
    /// [`Simulation::sweep`], [`Scenario::physics_threads`] and
    /// [`Scenario::mobility`] with byte-identical reports at any thread
    /// count (pinned by `tests/mode_determinism.rs`). Arrivals land
    /// uniformly in the bounding box of the deployment the seed
    /// materializes; the broadcast source is protected from churn.
    ///
    /// Only protocols whose per-station goal makes sense for mid-run
    /// arrivals support churn ([`ProtocolSpec::supports_churn`] — the
    /// broadcast family); [`Scenario::build`] rejects the rest, and
    /// validates the model parameters, with [`SimError::Spec`].
    #[must_use]
    pub fn churn(mut self, spec: ChurnSpec) -> Self {
        self.churn = Some(spec);
        self
    }

    /// Arms a seed-derived **adversary**: every
    /// [`AdversarySpec::epoch_rounds`] rounds its fault models run
    /// against the refreshed communication graph and inject targeted
    /// kills, transient outages, or jamming
    /// ([`super::AdversaryModel`]). Kill-type faults flow through the
    /// same transactional delta path as churn (index-stable tombstones,
    /// protected broadcast source, `on_leave`/`on_join` lifecycle
    /// hooks), jamming leaves the population untouched — so adversarial
    /// runs stay pure functions of their seed and compose with
    /// [`Scenario::churn`], [`Scenario::mobility`],
    /// [`Simulation::sweep`] and [`Scenario::physics_threads`] with
    /// byte-identical reports at any thread count (pinned by
    /// `tests/mode_determinism.rs`).
    ///
    /// Faulted runs fill [`RunReport::faults`] with kill/return/jam
    /// totals, the coverage-over-time degradation curve (one sample per
    /// adversary boundary) and the re-convergence time after the last
    /// fault. Adversaries attach to the same protocols as churn
    /// ([`ProtocolSpec::supports_churn`] — the broadcast family, whose
    /// per-station goal the degradation accounting is defined over);
    /// [`Scenario::build`] rejects the rest, and validates the model
    /// parameters, with [`SimError::Spec`].
    #[must_use]
    pub fn adversary(mut self, spec: AdversarySpec) -> Self {
        self.adversary = Some(spec);
        self
    }

    /// Sets how epoch boundaries refresh the spatial index and the
    /// communication graph (default [`RepairPolicy::Auto`]: incremental
    /// repair while at most 5% of the population changed, full rebuild
    /// beyond). The refreshed structures are **bit-identical** whichever
    /// path runs — reports never depend on the policy (pinned by
    /// `tests/repair_equivalence.rs`) — so this only trades epoch
    /// wall-clock; [`RepairPolicy::AlwaysFull`] and
    /// [`RepairPolicy::AlwaysIncremental`] exist chiefly for the
    /// differential tests and for benchmarking either path.
    #[must_use]
    pub fn repair_policy(mut self, policy: RepairPolicy) -> Self {
        self.repair = policy;
        self
    }

    /// Pins the kernel tier of the batched physics kernels (default
    /// [`KernelDispatch::Auto`]: the best tier the CPU supports, AVX2 on
    /// x86_64 / NEON on aarch64 / scalar elsewhere).
    /// [`KernelDispatch::ForceScalar`] runs the scalar reference path
    /// instead. Every tier is **bit-identical per element** (the
    /// explicit-SIMD contract, pinned by `tests/simd_equivalence.rs`),
    /// so this knob never changes a report byte — it exists for speed
    /// and for differential testing of the dispatch itself.
    #[must_use]
    pub fn kernel_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Sets the precision of the grid-native interference tail sum
    /// (default [`Accumulation::F64`]). [`Accumulation::F32`] folds each
    /// far-cell tail term to single precision — decode decisions and the
    /// near field stay f64 — trading low bits of the interference totals
    /// for throughput (error bounds in EXPERIMENTS.md). Because it
    /// **does** change bits, [`Scenario::build`] rejects it whenever
    /// bit-exact reporting is requested (round recording or attached
    /// observers).
    #[must_use]
    pub fn accumulation(mut self, accumulation: Accumulation) -> Self {
        self.accumulation = accumulation;
        self
    }

    /// Records per-round statistics into [`RunReport::per_round`].
    #[must_use]
    pub fn record_rounds(mut self) -> Self {
        self.record = true;
        self
    }

    /// Registers an observer factory; a fresh observer is built for every
    /// run (keeping sweeps deterministic) and its measurements land in
    /// [`RunReport::measurements`].
    #[must_use]
    pub fn observe(
        mut self,
        factory: impl Fn() -> Box<dyn Observer> + Send + Sync + 'static,
    ) -> Self {
        self.observers.push(Arc::new(factory));
        self
    }

    /// Validates the scenario into a runnable [`Simulation`].
    ///
    /// # Errors
    ///
    /// [`SimError::MissingProtocol`] without a protocol;
    /// [`SimError::MissingBudget`] when a goal-driven protocol has no
    /// budget.
    pub fn build(self) -> Result<Simulation<P>, SimError> {
        let spec = self.protocol.as_ref().ok_or(SimError::MissingProtocol)?;
        if self.budget.is_none() && !spec.has_fixed_schedule() {
            return Err(SimError::MissingBudget);
        }
        if let Some(mob) = &self.mobility {
            if mob.epoch_rounds == 0 {
                return Err(SimError::Spec(
                    "mobility epoch length must be at least one round".into(),
                ));
            }
            // Fail fast here rather than panicking inside run()/sweep()
            // worker threads.
            mob.model.validate().map_err(SimError::Spec)?;
            if matches!(spec, ProtocolSpec::GpsOracleBroadcast { .. }) {
                return Err(SimError::Spec(
                    "the GPS-oracle baseline precomputes a TDMA schedule from frozen \
                     geometry and does not support mobility"
                        .into(),
                ));
            }
        }
        if let Some(churn) = &self.churn {
            if churn.epoch_rounds == 0 {
                return Err(SimError::Spec(
                    "churn epoch length must be at least one round".into(),
                ));
            }
            // Fail fast here rather than panicking inside run()/sweep()
            // worker threads.
            churn.model.validate().map_err(SimError::Spec)?;
            if !spec.supports_churn() {
                return Err(SimError::Spec(format!(
                    "protocol '{}' does not support a dynamic population \
                     (churn needs a per-station goal that mid-run arrivals can adopt; \
                     the broadcast family qualifies)",
                    spec.name()
                )));
            }
        }
        if let Some(adv) = &self.adversary {
            // Fail fast here rather than panicking inside run()/sweep()
            // worker threads.
            adv.validate().map_err(SimError::Spec)?;
            if !spec.supports_churn() {
                return Err(SimError::Spec(format!(
                    "protocol '{}' does not support an adversary \
                     (fault degradation is accounted against a per-station goal \
                     that survives population changes; the broadcast family qualifies)",
                    spec.name()
                )));
            }
        }
        if let ProtocolSpec::ReFloodBroadcast {
            p, burst_rounds, ..
        } = spec
        {
            if !(*p > 0.0 && *p <= 1.0) {
                return Err(SimError::Spec(format!(
                    "re-flood probability must be in (0, 1], got {p}"
                )));
            }
            if *burst_rounds == 0 {
                return Err(SimError::Spec(
                    "re-flood burst must last at least one round".into(),
                ));
            }
        }
        if let ProtocolSpec::ReFloodBroadcastEstimate {
            nu0, burst_rounds, ..
        } = spec
        {
            if *nu0 == 0 {
                return Err(SimError::Spec(
                    "initial population estimate nu0 must be at least 1".into(),
                ));
            }
            if *burst_rounds == 0 {
                return Err(SimError::Spec(
                    "re-flood burst must last at least one round".into(),
                ));
            }
        }
        if let ProtocolSpec::NoSBroadcastOnlineEstimate { nu0, .. }
        | ProtocolSpec::SBroadcastOnlineEstimate { nu0, .. } = spec
        {
            if *nu0 == 0 {
                return Err(SimError::Spec(
                    "initial population estimate nu0 must be at least 1".into(),
                ));
            }
        }
        if self.accumulation == Accumulation::F32 && (self.record || !self.observers.is_empty()) {
            return Err(SimError::Spec(
                "Accumulation::F32 changes interference bits and cannot be combined \
                 with bit-exact reporting (record_rounds or attached observers); \
                 drop the F32 knob or the reporting hooks"
                    .into(),
            ));
        }
        // Resolve the machine's thread budget exactly once per
        // Simulation: sweeps and physics threads share it, so repeated
        // `sweep` calls never re-query the OS and the two axes of
        // parallelism cannot oversubscribe the machine. This is the ONE
        // call site sinr-lint's parallelism-resolver rule permits; the
        // clippy disallowed-methods mirror needs a local allow.
        #[allow(clippy::disallowed_methods)]
        let thread_budget = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Ok(Simulation {
            scenario: self,
            thread_budget,
        })
    }
}

/// A validated, runnable scenario. Immutable and shareable across
/// threads; every run is a pure function of its seed.
pub struct Simulation<P: MetricPoint = Point2> {
    scenario: Scenario<P>,
    /// Machine thread budget, resolved once at [`Scenario::build`] and
    /// shared between sweep workers and per-trial physics threads.
    thread_budget: usize,
}

impl<P: MetricPoint> Clone for Simulation<P> {
    fn clone(&self) -> Self {
        Simulation {
            scenario: self.scenario.clone(),
            thread_budget: self.thread_budget,
        }
    }
}

impl<P: MetricPoint> Simulation<P> {
    /// The protocol this simulation runs.
    pub fn protocol(&self) -> &ProtocolSpec {
        self.scenario
            .protocol
            .as_ref()
            .expect("validated by build()")
    }

    /// The SINR parameters in effect.
    pub fn params(&self) -> &SinrParams {
        &self.scenario.params
    }

    /// The station positions a given run seed materializes (generated
    /// topologies derive their own stream from the run seed, so this is
    /// exactly what [`Simulation::run`] will simulate on).
    ///
    /// # Errors
    ///
    /// Propagates topology-generation failures.
    pub fn materialize(&self, seed: u64) -> Result<Vec<P>, SimError> {
        self.scenario
            .topology
            .build(&self.scenario.params, derive_seed(seed, TOPOLOGY_STREAM, 0))
    }

    /// Runs one seed to completion.
    ///
    /// # Errors
    ///
    /// Topology, network or spec mismatches; never panics on well-formed
    /// scenarios.
    pub fn run(&self, seed: u64) -> Result<RunReport, SimError> {
        self.run_reusing(seed, &mut EngineArena::new())
    }

    /// As [`Simulation::run`], recycling the engine's reusable buffers
    /// (reception oracle, kernel pool, round outcome, graph scratch)
    /// through `arena` — the per-trial entry point of long-running hosts
    /// such as the `sinr-serve` worker pool, where one warm arena per
    /// worker amortizes allocation and keeps physics threads alive
    /// across jobs. The report is byte-identical to [`Simulation::run`]:
    /// arena contents are overwritten before every read, so reuse cannot
    /// leak state between trials (the server determinism test pins
    /// this).
    ///
    /// # Errors
    ///
    /// As [`Simulation::run`].
    pub fn run_reusing(&self, seed: u64, arena: &mut EngineArena) -> Result<RunReport, SimError> {
        let points = self.materialize(seed)?;
        let net =
            Network::new(points, self.scenario.params)?.with_interference_mode(self.scenario.mode);
        execute(&self.scenario, net, seed, arena)
    }

    /// Runs every seed, in parallel across the machine's cores. Results
    /// are in seed order and identical to a serial execution: each run
    /// depends only on its seed.
    ///
    /// The worker count is the thread budget resolved once at
    /// [`Scenario::build`], divided by the scenario's
    /// [`Scenario::physics_threads`] — sweep workers and per-trial
    /// physics threads share one budget, so the auto-sized composition
    /// stays within it (as long as `physics_threads` itself does; an
    /// explicitly oversized value is honored as given).
    ///
    /// # Errors
    ///
    /// The first (by seed order) run error, if any.
    pub fn sweep(&self, seeds: &[u64]) -> Result<SweepReport, SimError> {
        let workers = (self.thread_budget / self.scenario.physics_threads).max(1);
        self.sweep_with_threads(seeds, workers)
    }

    /// As [`Simulation::sweep`] with an explicit worker count (`1` runs
    /// serially). The result does not depend on `threads` — pinned by the
    /// golden determinism tests.
    ///
    /// # Errors
    ///
    /// The first (by seed order) run error, if any.
    pub fn sweep_with_threads(
        &self,
        seeds: &[u64],
        threads: usize,
    ) -> Result<SweepReport, SimError> {
        let mut slots: Vec<Option<Result<RunReport, SimError>>> = Vec::new();
        slots.resize_with(seeds.len(), || None);
        let workers = threads.clamp(1, seeds.len().max(1));
        if workers <= 1 {
            // One arena across the whole serial sweep: the same
            // buffer-recycling the parallel workers get per thread.
            let mut arena = EngineArena::new();
            for (i, &seed) in seeds.iter().enumerate() {
                slots[i] = Some(self.run_reusing(seed, &mut arena));
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    scope.spawn(move || {
                        // Per-worker arena, reused across every seed
                        // this worker claims (never shared, so the
                        // determinism contract is untouched).
                        let mut arena = EngineArena::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= seeds.len() {
                                break;
                            }
                            if tx
                                .send((i, self.run_reusing(seeds[i], &mut arena)))
                                .is_err()
                            {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                for (i, result) in rx {
                    slots[i] = Some(result);
                }
            });
        }
        let mut runs = Vec::with_capacity(seeds.len());
        for slot in slots {
            runs.push(slot.expect("every sweep slot filled")?);
        }
        Ok(SweepReport { runs })
    }
}

/// Result of the shared engine-drive loop.
struct Driven<Pr> {
    rounds: u64,
    completed: bool,
    nodes: Vec<Pr>,
    /// Final liveness flags, aligned with `nodes` (all `true` without
    /// churn) — per-station goals are counted over the live population.
    alive: Vec<bool>,
    total_transmissions: u64,
    per_round: Option<Vec<sinr_runtime::RoundStats>>,
    tx_counts: Option<Vec<u64>>,
    /// Fault accounting, when the scenario armed an adversary.
    faults: Option<FaultReport>,
}

/// The boxed state-machine factory of stations spawned by churn.
type Spawn<Pr> = Box<dyn FnMut(usize) -> Pr>;

/// Builds the engine of one run from the scenario's execution knobs:
/// physics threads, trace recording, and — for dynamic topologies — the
/// mobility and churn state, each seeded from the run seed on its own
/// stream ([`MOBILITY_STREAM`], [`CHURN_STREAM`]) and confined to the
/// bounding box of the materialized deployment.
///
/// `spawn` builds the protocol state of stations churn spawns mid-run;
/// arms whose protocol supports churn pass it (`build()` has verified the
/// combination, so a churn spec without a factory is a bug).
fn setup_engine<P: MetricPoint, Pr: Protocol + 'static>(
    scenario: &Scenario<P>,
    net: Network<P>,
    seed: u64,
    make: impl FnMut(usize) -> Pr,
    spawn: Option<Spawn<Pr>>,
    arena: &mut EngineArena,
) -> Engine<P, Pr> {
    let mut eng = Engine::new_reusing(net, seed, make, arena);
    eng.set_physics_threads(scenario.physics_threads);
    eng.set_repair_policy(scenario.repair);
    eng.set_kernel_dispatch(scenario.dispatch);
    eng.set_accumulation(scenario.accumulation);
    if scenario.record {
        eng.record_rounds();
    }
    if eng.network().is_empty() {
        return eng;
    }
    if let Some(spec) = &scenario.churn {
        let spawner = spawn.expect("build() validated that the protocol supports churn");
        let mut proc = ChurnProcess::over_deployment(
            spec.model,
            eng.network().points(),
            derive_seed(seed, CHURN_STREAM, 0),
        );
        if let Some(source) = scenario
            .protocol
            .as_ref()
            .and_then(ProtocolSpec::broadcast_source)
        {
            proc = proc.protect(source);
        }
        eng.set_churn(
            spec.epoch_rounds,
            move |_, alive, delta| proc.step_into(alive, delta),
            spawner,
        );
    }
    if let Some(spec) = &scenario.mobility {
        let mut mob = Mobility::over_deployment(
            spec.model,
            eng.network().points(),
            derive_seed(seed, MOBILITY_STREAM, 0),
        );
        eng.set_mobility(spec.epoch_rounds, move |_, pts| {
            // Churn may have appended stations since the last epoch.
            mob.ensure_stations(pts.len());
            mob.advance(pts);
        });
    }
    if let Some(spec) = &scenario.adversary {
        let mut plans = sinr_runtime::FaultPlanSet::new();
        for (k, model) in spec.models.iter().enumerate() {
            plans.push(model.build(derive_seed(seed, ADVERSARY_STREAM, k as u64)));
        }
        let protected = scenario
            .protocol
            .as_ref()
            .and_then(ProtocolSpec::broadcast_source)
            .unwrap_or(usize::MAX);
        eng.set_adversary(spec.epoch_rounds, protected, Box::new(plans));
    }
    eng
}

/// Whether every **live** node satisfies `done` (dead stations never
/// block a goal; identical to "all nodes" on static populations).
fn live_all<P: MetricPoint, Pr: Protocol>(
    eng: &Engine<P, Pr>,
    done: &impl Fn(&Pr) -> bool,
) -> bool {
    eng.nodes()
        .iter()
        .zip(eng.network().alive())
        .all(|(p, &a)| !a || done(p))
}

/// Number of **live** nodes satisfying `done`.
fn live_count<P: MetricPoint, Pr: Protocol>(
    eng: &Engine<P, Pr>,
    done: &impl Fn(&Pr) -> bool,
) -> usize {
    eng.nodes()
        .iter()
        .zip(eng.network().alive())
        .filter(|(p, &a)| a && done(p))
        .count()
}

/// Drives an engine until all live nodes satisfy `done` or `budget`
/// rounds elapse (predicate checked *before* each round, exactly like
/// [`Engine::run_until`] — the legacy runners' accounting).
#[allow(clippy::too_many_arguments)]
fn drive<P: MetricPoint, Pr: Protocol + 'static>(
    scenario: &Scenario<P>,
    net: Network<P>,
    seed: u64,
    budget: u64,
    make: impl FnMut(usize) -> Pr,
    done: impl Fn(&Pr) -> bool,
    spawn: Option<Spawn<Pr>>,
    observers: &mut [Box<dyn Observer>],
    arena: &mut EngineArena,
) -> Driven<Pr> {
    let n = net.len();
    let mut eng = setup_engine(scenario, net, seed, make, spawn, arena);
    for o in observers.iter_mut() {
        o.begin(n);
    }
    let adv_epoch = scenario.adversary.as_ref().map(|a| a.epoch_rounds);
    let mut coverage: Vec<CoveragePoint> = Vec::new();
    let mut executed = 0u64;
    let completed = loop {
        if live_all(&eng, &done) {
            break true;
        }
        if executed >= budget {
            break false;
        }
        let stats = eng.step();
        executed += 1;
        if !observers.is_empty() {
            let informed = live_count(&eng, &done);
            for o in observers.iter_mut() {
                o.on_round(&stats, informed);
            }
        }
        if let Some(epoch) = adv_epoch {
            // Sample the degradation curve right after each adversary
            // boundary round resolves (round 0 gives the baseline).
            let round = eng.round() - 1;
            if round % epoch == 0 {
                coverage.push(CoveragePoint {
                    round,
                    informed: live_count(&eng, &done),
                    live: eng.network().alive().iter().filter(|&&a| a).count(),
                });
            }
        }
    };
    let faults = adv_epoch.map(|_| {
        let stats = *eng.fault_stats();
        FaultReport {
            kills: stats.kills,
            returns: stats.returns,
            jam_rounds: stats.jam_rounds,
            recovery_rounds: match (completed, stats.last_fault_round) {
                (true, Some(last)) => Some(executed.saturating_sub(last)),
                _ => None,
            },
            coverage,
        }
    });
    let mut d = finish(eng, executed, completed, arena);
    d.faults = faults;
    d
}

/// Drives an engine for exactly `rounds` rounds (fixed global schedules:
/// coloring, consensus, leader election — none of which support churn,
/// so no spawn factory is taken).
#[allow(clippy::too_many_arguments)]
fn drive_exact<P: MetricPoint, Pr: Protocol + 'static>(
    scenario: &Scenario<P>,
    net: Network<P>,
    seed: u64,
    rounds: u64,
    make: impl FnMut(usize) -> Pr,
    done: impl Fn(&Pr) -> bool,
    observers: &mut [Box<dyn Observer>],
    arena: &mut EngineArena,
) -> Driven<Pr> {
    let n = net.len();
    let mut eng = setup_engine(scenario, net, seed, make, None, arena);
    for o in observers.iter_mut() {
        o.begin(n);
    }
    for _ in 0..rounds {
        let stats = eng.step();
        if !observers.is_empty() {
            let informed = live_count(&eng, &done);
            for o in observers.iter_mut() {
                o.on_round(&stats, informed);
            }
        }
    }
    finish(eng, rounds, true, arena)
}

/// Collects the drive result and hands the engine's reusable buffers
/// back to `arena` for the next trial.
fn finish<P: MetricPoint, Pr: Protocol>(
    eng: Engine<P, Pr>,
    rounds: u64,
    completed: bool,
    arena: &mut EngineArena,
) -> Driven<Pr> {
    let total_transmissions = eng.trace().total_transmissions();
    let per_round = eng.trace().per_round().map(<[_]>::to_vec);
    let tx_counts = per_round.is_some().then(|| eng.tx_counts().to_vec());
    let alive = eng.network().alive().to_vec();
    Driven {
        rounds,
        completed,
        nodes: eng.recycle_into(arena),
        alive,
        total_transmissions,
        per_round,
        tx_counts,
        faults: None,
    }
}

/// The shared tail of every broadcast-style arm: drive to the goal
/// predicate, count the live stations that reached it, erase the node
/// types. The factory doubles as the churn spawn factory (spawned
/// stations are never the source, so the same constructor yields an
/// uninformed newcomer), hence `Clone + 'static`.
#[allow(clippy::too_many_arguments)]
fn broadcast_arm<P: MetricPoint, Pr: Protocol + 'static>(
    scenario: &Scenario<P>,
    net: Network<P>,
    seed: u64,
    budget: u64,
    observers: &mut [Box<dyn Observer>],
    arena: &mut EngineArena,
    make: impl FnMut(usize) -> Pr + Clone + 'static,
    done: impl Fn(&Pr) -> bool,
) -> (Driven<()>, usize, Outcome) {
    let spawn: Option<Spawn<Pr>> = scenario
        .churn
        .as_ref()
        .map(|_| Box::new(make.clone()) as Spawn<Pr>);
    let d = drive(
        scenario, net, seed, budget, make, &done, spawn, observers, arena,
    );
    let informed = d
        .nodes
        .iter()
        .zip(&d.alive)
        .filter(|(p, &a)| a && done(p))
        .count();
    (erase(d), informed, Outcome::Broadcast)
}

fn check_source(source: usize, n: usize) -> Result<(), SimError> {
    if source >= n {
        return Err(SimError::Spec(format!(
            "source {source} out of range for n = {n}"
        )));
    }
    Ok(())
}

/// Executes one run. The per-node randomness is seeded with the run seed
/// itself (streams 0/1/2 as in the legacy runners), which is what makes
/// the new API reproduce `run_*` outputs field-for-field on explicit
/// topologies.
fn execute<P: MetricPoint>(
    scenario: &Scenario<P>,
    net: Network<P>,
    seed: u64,
    arena: &mut EngineArena,
) -> Result<RunReport, SimError> {
    let spec = scenario
        .protocol
        .as_ref()
        .ok_or(SimError::MissingProtocol)?;
    let consts = scenario.consts;
    let n = net.len();
    let budget = match scenario.budget {
        Some(b) => b,
        None if spec.has_fixed_schedule() => u64::MAX,
        None => return Err(SimError::MissingBudget),
    };
    let mut observers: Vec<Box<dyn Observer>> = scenario.observers.iter().map(|f| f()).collect();

    let (driven, informed, outcome): (Driven<()>, usize, Outcome) = match spec.clone() {
        ProtocolSpec::NoSBroadcast { source } => {
            check_source(source, n)?;
            broadcast_arm(
                scenario,
                net,
                seed,
                budget,
                &mut observers,
                arena,
                move |id| NoSBroadcastNode::new(id, source, 1, n, consts),
                NoSBroadcastNode::informed,
            )
        }
        ProtocolSpec::NoSBroadcastWithEstimate { source, nu } => {
            check_source(source, n)?;
            if nu < n {
                return Err(SimError::Spec(format!("estimate nu = {nu} below n = {n}")));
            }
            broadcast_arm(
                scenario,
                net,
                seed,
                budget,
                &mut observers,
                arena,
                move |id| NoSBroadcastNode::new(id, source, 1, nu, consts),
                NoSBroadcastNode::informed,
            )
        }
        ProtocolSpec::SBroadcast { source } => {
            check_source(source, n)?;
            broadcast_arm(
                scenario,
                net,
                seed,
                budget,
                &mut observers,
                arena,
                move |id| SBroadcastNode::new(id, source, 1, n, consts),
                SBroadcastNode::informed,
            )
        }
        ProtocolSpec::SBroadcastWithEstimate { source, nu } => {
            check_source(source, n)?;
            if nu < n {
                return Err(SimError::Spec(format!("estimate nu = {nu} below n = {n}")));
            }
            broadcast_arm(
                scenario,
                net,
                seed,
                budget,
                &mut observers,
                arena,
                move |id| SBroadcastNode::new(id, source, 1, nu, consts),
                SBroadcastNode::informed,
            )
        }
        ProtocolSpec::Coloring => {
            let full = crate::coloring::ColoringMachine::total_rounds(n, &consts);
            let total = full.min(budget);
            let d = drive_exact(
                scenario,
                net,
                seed,
                total,
                |_| StabilizeProtocol::new(n, consts),
                |p| p.machine().is_finished(),
                &mut observers,
                arena,
            );
            // A budget below the Fact 7 schedule truncates the run:
            // unfinished stations report color 0.0 (uncolored) and the
            // run counts as incomplete instead of panicking.
            let colors: Vec<f64> = d
                .nodes
                .iter()
                .map(|p| p.machine().color().unwrap_or(0.0))
                .collect();
            let finished = d.nodes.iter().filter(|p| p.machine().is_finished()).count();
            let mut d = erase(d);
            d.completed = total == full;
            (
                d,
                finished,
                Outcome::Coloring {
                    coloring: Coloring::new(colors),
                },
            )
        }
        ProtocolSpec::DaumBroadcast {
            source,
            granularity,
        } => {
            check_source(source, n)?;
            let rs = granularity.or_else(|| net.granularity()).unwrap_or(1.0);
            let alpha = scenario.params.alpha();
            broadcast_arm(
                scenario,
                net,
                seed,
                budget,
                &mut observers,
                arena,
                move |id| DaumBroadcastNode::new(id, source, 1, n, rs, alpha),
                DaumBroadcastNode::informed,
            )
        }
        ProtocolSpec::FloodBroadcast { source, p } => {
            check_source(source, n)?;
            broadcast_arm(
                scenario,
                net,
                seed,
                budget,
                &mut observers,
                arena,
                move |id| FloodNode::new(id, source, 1, p),
                FloodNode::informed,
            )
        }
        ProtocolSpec::LocalBroadcast { source } => {
            check_source(source, n)?;
            broadcast_arm(
                scenario,
                net,
                seed,
                budget,
                &mut observers,
                arena,
                move |id| LocalBroadcastNode::new(id, source, 1, n, 0.5),
                LocalBroadcastNode::informed,
            )
        }
        ProtocolSpec::ReFloodBroadcast {
            source,
            p,
            burst_rounds,
        } => {
            check_source(source, n)?;
            broadcast_arm(
                scenario,
                net,
                seed,
                budget,
                &mut observers,
                arena,
                move |id| crate::baselines::ReFloodNode::new(id, source, 1, p, burst_rounds),
                crate::baselines::ReFloodNode::informed,
            )
        }
        ProtocolSpec::ReFloodBroadcastEstimate {
            source,
            nu0,
            burst_rounds,
        } => {
            check_source(source, n)?;
            broadcast_arm(
                scenario,
                net,
                seed,
                budget,
                &mut observers,
                arena,
                move |id| {
                    crate::estimate::EstimatingReFloodNode::new(id, source, 1, nu0, burst_rounds)
                },
                crate::estimate::EstimatingReFloodNode::informed,
            )
        }
        ProtocolSpec::NoSBroadcastOnlineEstimate { source, nu0 } => {
            check_source(source, n)?;
            broadcast_arm(
                scenario,
                net,
                seed,
                budget,
                &mut observers,
                arena,
                move |id| crate::estimate::EstimatingNoSNode::new(id, source, 1, nu0, consts),
                crate::estimate::EstimatingNoSNode::informed,
            )
        }
        ProtocolSpec::SBroadcastOnlineEstimate { source, nu0 } => {
            check_source(source, n)?;
            broadcast_arm(
                scenario,
                net,
                seed,
                budget,
                &mut observers,
                arena,
                move |id| crate::estimate::EstimatingSNode::new(id, source, 1, nu0, consts),
                crate::estimate::EstimatingSNode::informed,
            )
        }
        ProtocolSpec::GpsOracleBroadcast { source } => {
            check_source(source, n)?;
            // Oracle TDMA is not engine-driven; per-round observers and
            // traces do not apply (documented on the variant).
            let rep = crate::baselines::gps::run_gps_oracle_on(&net, source, seed, budget);
            let driven = Driven {
                rounds: rep.rounds,
                completed: rep.completed,
                nodes: Vec::new(),
                alive: Vec::new(),
                total_transmissions: rep.total_transmissions,
                per_round: None,
                tx_counts: None,
                faults: None,
            };
            (driven, rep.informed, Outcome::Broadcast)
        }
        ProtocolSpec::AdhocWakeup { schedule } => {
            let first_wake = schedule.first_wake(n).ok_or_else(|| {
                SimError::Spec("wake schedule must wake at least one station".into())
            })?;
            let d = drive(
                scenario,
                net,
                seed,
                budget,
                |id| AdhocWakeupNode::new(id, &schedule, n, consts),
                AdhocWakeupNode::awake,
                None,
                &mut observers,
                arena,
            );
            let awake = d.nodes.iter().filter(|p| p.awake()).count();
            let rounds_from_first_wake = d.rounds.saturating_sub(first_wake);
            (
                erase(d),
                awake,
                Outcome::Wakeup {
                    first_wake,
                    rounds_from_first_wake,
                },
            )
        }
        ProtocolSpec::EstablishedWakeup {
            coloring,
            initiators,
        } => {
            if coloring.len() != n {
                return Err(SimError::Spec(format!(
                    "coloring size {} != n = {n}",
                    coloring.len()
                )));
            }
            if initiators.len() != n {
                return Err(SimError::Spec(format!(
                    "initiator flags size {} != n = {n}",
                    initiators.len()
                )));
            }
            broadcast_arm(
                scenario,
                net,
                seed,
                budget,
                &mut observers,
                arena,
                move |id| {
                    EstablishedWakeupNode::new(coloring.colors[id], initiators[id], n, consts)
                },
                |nd: &EstablishedWakeupNode| nd.signalled,
            )
        }
        ProtocolSpec::Consensus {
            values,
            bits,
            d_bound,
        } => {
            if values.len() != n {
                return Err(SimError::Spec(format!(
                    "one value per station: {} values for n = {n}",
                    values.len()
                )));
            }
            let window = consts.wakeup_window(n, d_bound);
            let total = (consts.coloring_rounds(n) + u64::from(bits) * window).min(budget);
            let d = drive_exact(
                scenario,
                net,
                seed,
                total,
                |id| ConsensusNode::new(values[id], bits, n, consts, window),
                |p| p.decided().is_some(),
                &mut observers,
                arena,
            );
            let decided: Vec<Option<u64>> = d.nodes.iter().map(ConsensusNode::decided).collect();
            let informed = decided.iter().filter(|v| v.is_some()).count();
            let agreement = decided.windows(2).all(|w| w[0] == w[1])
                && decided.first().is_some_and(Option::is_some);
            let min = values.iter().copied().min().unwrap_or(0);
            let valid = agreement && decided.first().copied().flatten() == Some(min);
            let mut d = erase(d);
            d.completed = agreement;
            (
                d,
                informed,
                Outcome::Consensus {
                    decided,
                    agreement,
                    valid,
                },
            )
        }
        ProtocolSpec::LeaderElection { d_bound } => {
            let bits = LeaderNode::id_bits(n);
            let window = consts.wakeup_window(n, d_bound);
            let total = (consts.coloring_rounds(n) + u64::from(bits) * window).min(budget);
            let d = drive_exact(
                scenario,
                net,
                seed,
                total,
                |id| {
                    // Stream 1 draws IDs; stream 0 drives the protocol
                    // inside the engine (as in the legacy runner).
                    use rand::Rng;
                    let mut rng = node_rng(seed, id as u64, 1);
                    let id_value = rng.gen_range(1..(1u64 << bits));
                    LeaderNode::new(id_value, n, consts, window)
                },
                |p| p.is_leader().is_some(),
                &mut observers,
                arena,
            );
            let leaders: Vec<usize> = d
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, nd)| nd.is_leader() == Some(true))
                .map(|(i, _)| i)
                .collect();
            let informed = d.nodes.iter().filter(|nd| nd.is_leader().is_some()).count();
            let unique = leaders.len() == 1;
            let mut d = erase(d);
            d.completed = unique;
            (d, informed, Outcome::Leader { leaders, unique })
        }
        ProtocolSpec::Alert {
            coloring,
            alerts,
            d_bound,
        } => {
            if coloring.len() != n {
                return Err(SimError::Spec(format!(
                    "coloring size {} != n = {n}",
                    coloring.len()
                )));
            }
            let mut alert_at: Vec<Option<u64>> = vec![None; n];
            for &(station, round) in &alerts {
                if station >= n {
                    return Err(SimError::Spec(format!(
                        "alerted station {station} out of range for n = {n}"
                    )));
                }
                let slot = &mut alert_at[station];
                *slot = Some(slot.map_or(round, |r| r.min(round)));
            }
            let window = consts.wakeup_window(n, d_bound);
            let d = drive(
                scenario,
                net,
                seed,
                budget,
                |id| {
                    crate::alert::AlertNode::new(
                        coloring.colors[id],
                        alert_at[id],
                        n,
                        consts,
                        window,
                    )
                },
                crate::alert::AlertNode::alarmed,
                None,
                &mut observers,
                arena,
            );
            let learned_at: Vec<Option<u64>> = d.nodes.iter().map(|nd| nd.learned_at()).collect();
            let alarmed = learned_at.iter().filter(|v| v.is_some()).count();
            (erase(d), alarmed, Outcome::Alert { learned_at })
        }
    };

    let mut report = RunReport {
        seed,
        n,
        rounds: driven.rounds,
        completed: driven.completed,
        informed,
        total_transmissions: driven.total_transmissions,
        outcome,
        per_round: driven.per_round,
        tx_counts: driven.tx_counts,
        measurements: std::collections::BTreeMap::new(),
        faults: driven.faults,
    };
    for o in &mut observers {
        o.finish(&mut report);
    }
    Ok(report)
}

/// Drops the typed node states from a drive result (the protocol-specific
/// data has already been extracted into the [`Outcome`]).
fn erase<Pr>(d: Driven<Pr>) -> Driven<()> {
    Driven {
        rounds: d.rounds,
        completed: d.completed,
        nodes: Vec::new(),
        alive: d.alive,
        total_transmissions: d.total_transmissions,
        per_round: d.per_round,
        tx_counts: d.tx_counts,
        faults: d.faults,
    }
}
