//! Declarative fault injection: seed-derived adversaries attacking a
//! scenario at epoch boundaries.
//!
//! An [`AdversarySpec`] names one or more [`AdversaryModel`]s (mapped
//! onto the [`sinr_runtime`] fault plans) plus an epoch length. The
//! plans run at every adversary epoch boundary against the *refreshed*
//! communication graph, and their faults — targeted kills, outages with
//! later returns, jamming — flow through the same transactional delta
//! path as churn, so adversarial runs keep the full determinism
//! contract: pure functions of the run seed, byte-identical at any
//! physics-thread or sweep-worker count. The adversary schedule derives
//! from the run seed on its own stream, so arming an adversary perturbs
//! neither the topology, the per-node randomness, the mobility
//! trajectory, nor the churn schedule.
//!
//! Because degradation is accounted against a per-station dissemination
//! goal (the [`super::RunReport::faults`] coverage curve), adversaries
//! attach to the same protocol family as churn
//! ([`super::ProtocolSpec::supports_churn`]); [`super::Scenario::build`]
//! rejects the rest. The broadcast source is protected — killing or
//! jamming it would make the goal undefined, exactly as under churn.

use sinr_runtime::{
    BlackoutAdversary, CutVertexAdversary, FaultPlan, JamAdversary, PhaseCrashAdversary,
};

/// One fault-injection behaviour, applied at every adversary epoch
/// boundary of a run. Randomized models draw from a seed derived from
/// the run seed, keeping runs replayable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversaryModel {
    /// From `at_epoch` on, each boundary kills up to
    /// `⌊fraction · live⌋` stations, preferring **cut vertices** of the
    /// current communication graph (articulation points whose loss
    /// disconnects the survivors), falling back to highest-degree
    /// stations — the worst-case targeted attack on connectivity.
    CutVertexKill {
        /// Fraction of the live population killed per boundary, in
        /// `[0, 1]`.
        fraction: f64,
        /// First epoch (0-based) at which the attack fires.
        at_epoch: u64,
    },
    /// Watches the protocol's phase structure (via
    /// `Protocol::phase_hint`) and crashes `kills` random stations at
    /// the first boundary after every `every_phases`-th phase
    /// transition — faults synchronized to the protocol's most
    /// vulnerable moments.
    PhaseCrashBurst {
        /// Stations crashed per burst (must be ≥ 1).
        kills: usize,
        /// Fire on every `every_phases`-th observed transition
        /// (must be ≥ 1).
        every_phases: u64,
    },
    /// `jammers` live stations (re-picked each boundary) transmit
    /// unconditional noise every round of the epoch: their neighbours
    /// decode silence unless SINR still favours a legitimate sender.
    /// The population is untouched — pure interference.
    Jam {
        /// Concurrently jamming stations (must be ≥ 1).
        jammers: usize,
    },
    /// Each boundary takes every live station down independently with
    /// probability `fraction`; victims **return at their original
    /// positions** `outage_epochs` boundaries later — transient
    /// outages rather than permanent deaths.
    Blackout {
        /// Per-station outage probability per boundary, in `[0, 1]`.
        fraction: f64,
        /// Epochs a victim stays down (must be ≥ 1).
        outage_epochs: u64,
    },
}

impl AdversaryModel {
    /// Validates the model parameters; returns a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let check_fraction = |fraction: f64| {
            if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
                return Err(format!(
                    "adversary fraction must be a finite probability in [0, 1], got {fraction}"
                ));
            }
            Ok(())
        };
        match *self {
            AdversaryModel::CutVertexKill { fraction, .. } => check_fraction(fraction),
            AdversaryModel::PhaseCrashBurst {
                kills,
                every_phases,
            } => {
                if kills == 0 {
                    return Err("phase-crash burst must kill at least one station".into());
                }
                if every_phases == 0 {
                    return Err(
                        "phase-crash burst must fire on some phase (every_phases ≥ 1)".into(),
                    );
                }
                Ok(())
            }
            AdversaryModel::Jam { jammers } => {
                if jammers == 0 {
                    return Err("jam adversary needs at least one jamming station".into());
                }
                Ok(())
            }
            AdversaryModel::Blackout {
                fraction,
                outage_epochs,
            } => {
                check_fraction(fraction)?;
                if outage_epochs == 0 {
                    return Err("blackout outages must last at least one epoch".into());
                }
                Ok(())
            }
        }
    }

    /// Whether the model kills stations (as opposed to pure
    /// interference). Kill-type models ride the churn transaction path.
    pub fn kills_stations(&self) -> bool {
        !matches!(self, AdversaryModel::Jam { .. })
    }

    /// Instantiates the runtime fault plan; `seed` feeds the model's
    /// random choices (derived per-model from the run seed on the
    /// adversary stream, so composed models draw independently).
    pub fn build(&self, seed: u64) -> Box<dyn FaultPlan> {
        match *self {
            AdversaryModel::CutVertexKill { fraction, at_epoch } => {
                Box::new(CutVertexAdversary::new(fraction, at_epoch))
            }
            AdversaryModel::PhaseCrashBurst {
                kills,
                every_phases,
            } => Box::new(PhaseCrashAdversary::new(kills, every_phases, seed)),
            AdversaryModel::Jam { jammers } => Box::new(JamAdversary::new(jammers, seed)),
            AdversaryModel::Blackout {
                fraction,
                outage_epochs,
            } => Box::new(BlackoutAdversary::new(fraction, outage_epochs, seed)),
        }
    }
}

/// One or more adversary models and the number of rounds between their
/// boundaries.
///
/// # Example
///
/// ```
/// use sinr_core::sim::{AdversarySpec, AdversaryModel, ProtocolSpec, Scenario, TopologySpec};
///
/// let sim = Scenario::new(TopologySpec::UniformSquare { n: 40, side: 2.0 })
///     .protocol(ProtocolSpec::ReFloodBroadcast { source: 0, p: 0.3, burst_rounds: 32 })
///     .adversary(
///         AdversarySpec::cut_vertex_kill(0.2, 1, 16).and(AdversaryModel::Jam { jammers: 2 }),
///     )
///     .budget(200)
///     .build()?;
/// assert_eq!(sim.run(7)?, sim.run(7)?); // adversarial runs replay bit-for-bit
/// # Ok::<(), sinr_core::sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarySpec {
    /// The fault behaviours, applied in order at each boundary (later
    /// models see only the merge filtering of the engine, not each
    /// other's picks — overlaps deduplicate).
    pub models: Vec<AdversaryModel>,
    /// Rounds per adversary epoch (must be at least 1). Independent of
    /// any churn or mobility epoch — all hooks fire on their own
    /// schedules.
    pub epoch_rounds: u64,
}

impl AdversarySpec {
    /// A spec from explicit models.
    pub fn new(models: Vec<AdversaryModel>, epoch_rounds: u64) -> Self {
        AdversarySpec {
            models,
            epoch_rounds,
        }
    }

    /// A single [`AdversaryModel::CutVertexKill`] adversary.
    pub fn cut_vertex_kill(fraction: f64, at_epoch: u64, epoch_rounds: u64) -> Self {
        AdversarySpec::new(
            vec![AdversaryModel::CutVertexKill { fraction, at_epoch }],
            epoch_rounds,
        )
    }

    /// A single [`AdversaryModel::PhaseCrashBurst`] adversary.
    pub fn phase_crash(kills: usize, every_phases: u64, epoch_rounds: u64) -> Self {
        AdversarySpec::new(
            vec![AdversaryModel::PhaseCrashBurst {
                kills,
                every_phases,
            }],
            epoch_rounds,
        )
    }

    /// A single [`AdversaryModel::Jam`] adversary.
    pub fn jam(jammers: usize, epoch_rounds: u64) -> Self {
        AdversarySpec::new(vec![AdversaryModel::Jam { jammers }], epoch_rounds)
    }

    /// A single [`AdversaryModel::Blackout`] adversary.
    pub fn blackout(fraction: f64, outage_epochs: u64, epoch_rounds: u64) -> Self {
        AdversarySpec::new(
            vec![AdversaryModel::Blackout {
                fraction,
                outage_epochs,
            }],
            epoch_rounds,
        )
    }

    /// Adds another model to the composition.
    #[must_use]
    pub fn and(mut self, model: AdversaryModel) -> Self {
        self.models.push(model);
        self
    }

    /// Validates the whole spec; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.models.is_empty() {
            return Err("adversary spec needs at least one model".into());
        }
        if self.epoch_rounds == 0 {
            return Err("adversary epoch length must be at least one round".into());
        }
        for model in &self.models {
            model.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ProtocolSpec, Scenario, SimError, TopologySpec};

    fn scenario_with(spec: AdversarySpec, protocol: ProtocolSpec) -> Result<(), SimError> {
        Scenario::new(TopologySpec::UniformSquare { n: 10, side: 2.0 })
            .protocol(protocol)
            .adversary(spec)
            .budget(10)
            .build()
            .map(|_| ())
    }

    #[test]
    fn invalid_model_parameters_fail_at_build_not_run() {
        for spec in [
            AdversarySpec::cut_vertex_kill(-0.1, 0, 8), // negative fraction
            AdversarySpec::cut_vertex_kill(1.5, 0, 8),  // above 1
            AdversarySpec::cut_vertex_kill(f64::NAN, 0, 8),
            AdversarySpec::phase_crash(0, 1, 8), // zero kills
            AdversarySpec::phase_crash(2, 0, 8), // zero phase stride
            AdversarySpec::jam(0, 8),            // zero jammers
            AdversarySpec::blackout(0.2, 0, 8),  // zero outage
            AdversarySpec::blackout(f64::INFINITY, 1, 8),
            AdversarySpec::jam(1, 0),          // zero epoch length
            AdversarySpec::new(Vec::new(), 8), // no models
        ] {
            let built = scenario_with(
                spec.clone(),
                ProtocolSpec::FloodBroadcast { source: 0, p: 0.5 },
            );
            match built {
                Err(err) => assert!(matches!(err, SimError::Spec(_)), "{spec:?}: {err}"),
                Ok(()) => panic!("{spec:?}: build accepted an invalid adversary spec"),
            }
        }
    }

    #[test]
    fn adversaries_attach_only_to_churn_capable_protocols() {
        for protocol in [
            ProtocolSpec::Coloring,
            ProtocolSpec::LeaderElection { d_bound: 4 },
            ProtocolSpec::GpsOracleBroadcast { source: 0 },
        ] {
            let err = scenario_with(AdversarySpec::jam(1, 8), protocol.clone()).unwrap_err();
            assert!(
                matches!(err, SimError::Spec(_)),
                "{}: {err}",
                protocol.name()
            );
        }
    }

    #[test]
    fn composition_and_classification() {
        let spec = AdversarySpec::cut_vertex_kill(0.25, 1, 16)
            .and(AdversaryModel::Jam { jammers: 3 })
            .and(AdversaryModel::Blackout {
                fraction: 0.1,
                outage_epochs: 2,
            });
        assert_eq!(spec.models.len(), 3);
        assert!(spec.validate().is_ok());
        assert!(spec.models[0].kills_stations());
        assert!(!spec.models[1].kills_stations());
        assert!(spec.models[2].kills_stations());
    }
}
