//! Declarative population churn: a lifecycle model plus an epoch length.
//!
//! A [`ChurnSpec`] makes a scenario's *population* dynamic: the run seed
//! materializes the epoch-0 deployment as usual, then every
//! `epoch_rounds` rounds a [`sinr_netgen::churn::ChurnProcess`] — seeded
//! from the run seed on its own stream, with arrivals confined to the
//! bounding box of the initial deployment — kills, rejoins and spawns
//! stations, and the network rebuilds its spatial index and communication
//! graph in place. Station indices are **stable**: dead stations keep
//! their rows in every per-station vector (tombstones), spawns append.
//! Like everything else in a scenario, the whole churn schedule is a pure
//! function of the run seed, so churned sweeps replay bit-for-bit at any
//! thread count.
//!
//! The broadcast source (when the protocol has one) is protected from
//! churn: killing it would make the dissemination goal undefined.

use sinr_netgen::churn::ChurnModel;

/// A churn model and the number of rounds between churn epochs.
///
/// # Example
///
/// ```
/// use sinr_core::sim::{ChurnSpec, ProtocolSpec, Scenario, TopologySpec};
///
/// let sim = Scenario::new(TopologySpec::UniformSquare { n: 60, side: 2.0 })
///     .protocol(ProtocolSpec::ReFloodBroadcast { source: 0, p: 0.3, burst_rounds: 32 })
///     .churn(ChurnSpec::poisson(1.0, 12.0, 8))
///     .budget(200)
///     .build()?;
/// assert_eq!(sim.run(7)?, sim.run(7)?); // churned runs replay bit-for-bit
/// # Ok::<(), sinr_core::sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// The station lifecycle at each epoch boundary.
    pub model: ChurnModel,
    /// Rounds per churn epoch (must be at least 1; the population is
    /// frozen within an epoch). Independent of any
    /// [`super::MobilitySpec::epoch_rounds`] — the two hooks fire on
    /// their own schedules.
    pub epoch_rounds: u64,
}

impl ChurnSpec {
    /// A spec from an explicit model.
    pub fn new(model: ChurnModel, epoch_rounds: u64) -> Self {
        ChurnSpec {
            model,
            epoch_rounds,
        }
    }

    /// Poisson arrivals at `arrival_rate` expected joins per epoch and
    /// geometric lifetimes of `mean_lifetime` expected epochs.
    pub fn poisson(arrival_rate: f64, mean_lifetime: f64, epoch_rounds: u64) -> Self {
        ChurnSpec::new(
            ChurnModel {
                arrival_rate,
                mean_lifetime,
            },
            epoch_rounds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ProtocolSpec, Scenario, SimError, TopologySpec};

    fn scenario_with(spec: ChurnSpec, protocol: ProtocolSpec) -> Result<(), SimError> {
        Scenario::new(TopologySpec::UniformSquare { n: 10, side: 2.0 })
            .protocol(protocol)
            .churn(spec)
            .budget(10)
            .build()
            .map(|_| ())
    }

    #[test]
    fn invalid_model_parameters_fail_at_build_not_run() {
        for spec in [
            ChurnSpec::poisson(-1.0, 10.0, 4), // negative rate
            ChurnSpec::poisson(1.0, 0.0, 4),   // zero lifetime
            ChurnSpec::poisson(f64::NAN, 10.0, 4),
            ChurnSpec::poisson(1.0, f64::INFINITY, 4),
            ChurnSpec::poisson(1.0, 10.0, 0), // zero epoch length
        ] {
            let built = scenario_with(spec, ProtocolSpec::FloodBroadcast { source: 0, p: 0.5 });
            match built {
                Err(err) => assert!(matches!(err, SimError::Spec(_)), "{spec:?}: {err}"),
                Ok(()) => panic!("{spec:?}: build accepted an invalid churn spec"),
            }
        }
    }

    #[test]
    fn churn_with_gps_oracle_baseline_fails_at_build() {
        let err = scenario_with(
            ChurnSpec::poisson(1.0, 10.0, 4),
            ProtocolSpec::GpsOracleBroadcast { source: 0 },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Spec(_)), "{err}");
    }

    #[test]
    fn churn_with_fixed_schedule_protocols_fails_at_build() {
        for protocol in [
            ProtocolSpec::Coloring,
            ProtocolSpec::LeaderElection { d_bound: 4 },
        ] {
            let err =
                scenario_with(ChurnSpec::poisson(1.0, 10.0, 4), protocol.clone()).unwrap_err();
            assert!(
                matches!(err, SimError::Spec(_)),
                "{}: {err}",
                protocol.name()
            );
        }
    }

    #[test]
    fn constructors_fill_the_model() {
        let spec = ChurnSpec::poisson(1.5, 20.0, 8);
        assert_eq!(
            spec.model,
            ChurnModel {
                arrival_rate: 1.5,
                mean_lifetime: 20.0
            }
        );
        assert_eq!(spec.epoch_rounds, 8);
    }
}
