//! Declarative topology specifications bridging the [`sinr_netgen`]
//! generators.
//!
//! A [`TopologySpec`] is plain data: it names a network family and its
//! parameters, and materializes into concrete station positions only when a
//! [`crate::sim::Simulation`] runs a seed. This keeps scenarios fully
//! declarative (a spec plus a seed reproduces the deployment bit-for-bit)
//! and lets seed sweeps regenerate an independent deployment per trial.
//!
//! Explicit point sets (any [`MetricPoint`] type) are topologies too, via
//! the [`Topology`] impl on `Vec<P>` — that is what the legacy `run_*`
//! wrappers and the non-planar model-variant tests use.

use sinr_geometry::{MetricPoint, Point2};
use sinr_netgen::{cluster, grid, line, shapes, uniform};
use sinr_phy::SinrParams;

use super::SimError;

/// A source of station positions for a scenario.
///
/// `build` must be deterministic in `(params, seed)`; sweeps rely on this
/// to replay any per-seed deployment.
pub trait Topology<P: MetricPoint>: Send + Sync {
    /// Produces the station positions for one run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Topology`] when the family cannot realise its
    /// parameters (e.g. a connected uniform deployment at too low density).
    fn build(&self, params: &SinrParams, seed: u64) -> Result<Vec<P>, SimError>;
}

/// Explicit station positions: every run uses exactly these points.
impl<P: MetricPoint> Topology<P> for Vec<P> {
    fn build(&self, _params: &SinrParams, _seed: u64) -> Result<Vec<P>, SimError> {
        Ok(self.clone())
    }
}

/// A declarative, serializable description of a generated network family
/// (all [`sinr_netgen`] generators produce planar points).
///
/// Seeded families draw fresh positions per run seed; deterministic
/// families (lattices, lines) ignore the seed.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// `n` stations uniform in a `side × side` square ([`uniform::square`]).
    UniformSquare {
        /// Station count.
        n: usize,
        /// Square side length.
        side: f64,
    },
    /// As [`TopologySpec::UniformSquare`], retried until the communication
    /// graph is connected ([`uniform::connected_square`]).
    ConnectedSquare {
        /// Station count.
        n: usize,
        /// Square side length.
        side: f64,
    },
    /// Connected uniform square sized for `density` stations per unit area
    /// ([`uniform::side_for_density`]).
    ConnectedSquareDensity {
        /// Station count.
        n: usize,
        /// Target stations per unit area.
        density: f64,
    },
    /// `n` stations uniform in a disk ([`uniform::disk`]).
    UniformDisk {
        /// Station count.
        n: usize,
        /// Disk radius.
        radius: f64,
    },
    /// Regular lattice ([`grid::lattice`]); ignores the seed.
    Lattice {
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
        /// Point spacing.
        spacing: f64,
    },
    /// Jittered lattice ([`grid::jittered_lattice`]).
    JitteredLattice {
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
        /// Point spacing.
        spacing: f64,
        /// Max per-coordinate jitter.
        amplitude: f64,
    },
    /// Evenly spaced line ([`line::uniform_line`]); ignores the seed.
    UniformLine {
        /// Station count.
        n: usize,
        /// Gap between consecutive stations.
        gap: f64,
    },
    /// The footnote-2 adversarial line with geometrically shrinking gaps
    /// and exponential granularity ([`line::halving_line`]); ignores the
    /// seed.
    HalvingLine {
        /// Station count.
        n: usize,
        /// First gap.
        first_gap: f64,
        /// Gap shrink ratio.
        ratio: f64,
        /// Smallest allowed gap.
        min_gap: f64,
    },
    /// Line interpolated to a target granularity `R_s`
    /// ([`line::granularity_line`]); ignores the seed.
    GranularityLine {
        /// Station count.
        n: usize,
        /// Largest gap.
        max_gap: f64,
        /// Target granularity.
        rs_target: f64,
        /// Smallest allowed gap.
        min_gap: f64,
    },
    /// Granularity-controlled line at a fixed hop diameter
    /// ([`line::granularity_line_fixed_d`]); ignores the seed.
    GranularityLineFixedD {
        /// Station count.
        n: usize,
        /// Largest gap.
        max_gap: f64,
        /// Target granularity.
        rs_target: f64,
        /// Hop-diameter to realise.
        d_hops: usize,
        /// Smallest allowed gap.
        min_gap: f64,
    },
    /// Chain of clusters realising an exact communication-graph diameter
    /// ([`cluster::chain_for_diameter`]).
    ClusterChain {
        /// Target diameter.
        diameter: u32,
        /// Stations per cluster.
        per_cluster: usize,
    },
    /// Gaussian clusters scattered in a square
    /// ([`cluster::gaussian_clusters`]).
    GaussianClusters {
        /// Cluster count.
        k: usize,
        /// Stations per cluster.
        per_cluster: usize,
        /// Square side.
        side: f64,
        /// Cluster spread.
        sigma: f64,
    },
    /// The footnote-4 adversary: dense core plus isolated satellites
    /// ([`cluster::core_and_satellites`]).
    CoreAndSatellites {
        /// Core station count.
        core_n: usize,
        /// Satellite count.
        sat_n: usize,
        /// Core disk radius.
        core_radius: f64,
        /// Satellite circle radius.
        sat_distance: f64,
    },
    /// Ring deployment ([`shapes::ring`]).
    Ring {
        /// Station count.
        n: usize,
        /// Ring radius.
        radius: f64,
    },
    /// Two dense blobs joined by a thin corridor ([`shapes::bridge`]).
    Bridge {
        /// Stations per blob.
        blob_n: usize,
        /// Stations in the corridor.
        corridor_n: usize,
        /// Blob side length.
        blob_side: f64,
    },
    /// Two-tier density contrast ([`shapes::two_tier`]).
    TwoTier {
        /// Dense-half station count.
        dense_n: usize,
        /// Density contrast ratio.
        ratio: usize,
        /// Region side length.
        side: f64,
    },
}

impl Topology<Point2> for TopologySpec {
    fn build(&self, params: &SinrParams, seed: u64) -> Result<Vec<Point2>, SimError> {
        let pts = match *self {
            TopologySpec::UniformSquare { n, side } => uniform::square(n, side, seed),
            TopologySpec::ConnectedSquare { n, side } => {
                uniform::connected_square(n, side, params, seed).ok_or_else(|| {
                    SimError::Topology(format!(
                        "no connected uniform deployment for n = {n}, side = {side}, seed = {seed}"
                    ))
                })?
            }
            TopologySpec::ConnectedSquareDensity { n, density } => {
                let side = uniform::side_for_density(n, density);
                uniform::connected_square(n, side, params, seed).ok_or_else(|| {
                    SimError::Topology(format!(
                        "no connected uniform deployment for n = {n}, density = {density}, seed = {seed}"
                    ))
                })?
            }
            TopologySpec::UniformDisk { n, radius } => uniform::disk(n, radius, seed),
            TopologySpec::Lattice {
                rows,
                cols,
                spacing,
            } => grid::lattice(rows, cols, spacing),
            TopologySpec::JitteredLattice {
                rows,
                cols,
                spacing,
                amplitude,
            } => grid::jittered_lattice(rows, cols, spacing, amplitude, seed),
            TopologySpec::UniformLine { n, gap } => line::uniform_line(n, gap),
            TopologySpec::HalvingLine {
                n,
                first_gap,
                ratio,
                min_gap,
            } => line::halving_line(n, first_gap, ratio, min_gap),
            TopologySpec::GranularityLine {
                n,
                max_gap,
                rs_target,
                min_gap,
            } => line::granularity_line(n, max_gap, rs_target, min_gap),
            TopologySpec::GranularityLineFixedD {
                n,
                max_gap,
                rs_target,
                d_hops,
                min_gap,
            } => line::granularity_line_fixed_d(n, max_gap, rs_target, d_hops, min_gap),
            TopologySpec::ClusterChain {
                diameter,
                per_cluster,
            } => cluster::chain_for_diameter(diameter, per_cluster, params, seed),
            TopologySpec::GaussianClusters {
                k,
                per_cluster,
                side,
                sigma,
            } => cluster::gaussian_clusters(k, per_cluster, side, sigma, seed),
            TopologySpec::CoreAndSatellites {
                core_n,
                sat_n,
                core_radius,
                sat_distance,
            } => cluster::core_and_satellites(core_n, sat_n, core_radius, sat_distance, seed),
            TopologySpec::Ring { n, radius } => shapes::ring(n, radius, seed),
            TopologySpec::Bridge {
                blob_n,
                corridor_n,
                blob_side,
            } => shapes::bridge(blob_n, corridor_n, blob_side, params, seed),
            TopologySpec::TwoTier {
                dense_n,
                ratio,
                side,
            } => shapes::two_tier(dense_n, ratio, side, seed),
        };
        Ok(pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_points_ignore_seed() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)];
        let params = SinrParams::default_plane();
        assert_eq!(
            pts.build(&params, 1).unwrap(),
            pts.build(&params, 2).unwrap()
        );
    }

    #[test]
    fn seeded_specs_are_deterministic_per_seed() {
        let spec = TopologySpec::UniformSquare { n: 16, side: 2.0 };
        let params = SinrParams::default_plane();
        assert_eq!(
            spec.build(&params, 7).unwrap(),
            spec.build(&params, 7).unwrap()
        );
        assert_ne!(
            spec.build(&params, 7).unwrap(),
            spec.build(&params, 8).unwrap()
        );
    }

    #[test]
    fn cluster_chain_realises_size() {
        let spec = TopologySpec::ClusterChain {
            diameter: 3,
            per_cluster: 5,
        };
        let params = SinrParams::default_plane();
        assert_eq!(spec.build(&params, 3).unwrap().len(), 20);
    }

    #[test]
    fn connected_square_impossible_density_errors() {
        // 4 stations spread over a 1000-side square can essentially never
        // be connected; the generator gives up and the spec reports it.
        let spec = TopologySpec::ConnectedSquare { n: 4, side: 1000.0 };
        let params = SinrParams::default_plane();
        assert!(matches!(spec.build(&params, 1), Err(SimError::Topology(_))));
    }
}
