//! Coloring-invariant verifiers for Lemma 1 and Lemma 2.
//!
//! Given a finished coloring (one probability per station), these functions
//! measure exactly the quantities the two lemmas bound:
//!
//! * **Lemma 1**: for every color `p` and every unit ball `B`,
//!   `Σ_{w ∈ B, p_w = p} p_w < C₁`;
//! * **Lemma 2**: for every station `v` there is a color `p` with
//!   `Σ_{w ∈ B(v, ε/2), p_w = p} p_w ≥ C₂`.
//!
//! Balls are checked centred at every station — the standard discretisation
//! (an adversarial ball centre can beat a station-centred one by at most the
//! mass of a slightly larger station-centred ball, so station-centred checks
//! certify the lemmas up to a constant).

// Keyed by the color's bit pattern: `BTreeMap` iteration is then a pure
// function of the input coloring, so the max/min folds below visit masses
// in a reproducible order (a `HashMap` here is exactly the PR-2
// `CellAggregate` determinism bug class).
use std::collections::BTreeMap;

use sinr_geometry::{GridIndex, MetricPoint};

/// A finished coloring: `colors[v]` is station `v`'s assigned probability.
/// Stations that did not participate carry `0.0` and are skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct Coloring {
    /// Per-station color (transmission probability), 0 for non-participants.
    pub colors: Vec<f64>,
}

impl Coloring {
    /// Wraps per-station colors.
    pub fn new(colors: Vec<f64>) -> Self {
        Coloring { colors }
    }

    /// Number of stations (participants and not).
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether there are no stations.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// The distinct nonzero color values, ascending.
    pub fn palette(&self) -> Vec<f64> {
        let mut seen: Vec<f64> = Vec::new();
        for &c in &self.colors {
            if c > 0.0 && !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen.sort_by(f64::total_cmp);
        seen
    }

    /// Number of distinct nonzero colors (the paper bounds this by
    /// `O(log n)`).
    pub fn num_colors(&self) -> usize {
        self.palette().len()
    }
}

/// Lemma 1 measurement: the maximum, over stations `v` and colors `p`, of
/// the mass `Σ_{w ∈ B(v, radius), p_w = p} p_w`. The lemma asserts this
/// stays below a constant `C₁` independent of `n`; pass `radius = 1.0` for
/// unit balls.
///
/// Returns 0 for an empty or all-zero coloring.
pub fn lemma1_max_ball_mass<P: MetricPoint>(points: &[P], coloring: &Coloring, radius: f64) -> f64 {
    assert_eq!(
        points.len(),
        coloring.len(),
        "points/coloring size mismatch"
    );
    if points.is_empty() {
        return 0.0;
    }
    let grid = GridIndex::build(points, radius.max(0.05));
    let mut max_mass = 0.0f64;
    let mut local: BTreeMap<u64, f64> = BTreeMap::new();
    for (v, pv) in points.iter().enumerate() {
        local.clear();
        for w in grid.ball(points, *pv, radius) {
            let c = coloring.colors[w];
            if c > 0.0 {
                *local.entry(c.to_bits()).or_insert(0.0) += c;
            }
        }
        let _ = v;
        for &mass in local.values() {
            max_mass = max_mass.max(mass);
        }
    }
    max_mass
}

/// Lemma 2 measurement: the minimum, over participating stations `v`, of
/// the *best single-color* mass inside `B(v, close_radius)`
/// (`close_radius = ε/2` for the paper's statement). The lemma asserts this
/// stays above a constant `C₂`.
///
/// Stations with color 0 (non-participants) are not quantified over.
/// Returns `f64::INFINITY` when no station participates.
pub fn lemma2_min_close_mass<P: MetricPoint>(
    points: &[P],
    coloring: &Coloring,
    close_radius: f64,
) -> f64 {
    assert_eq!(
        points.len(),
        coloring.len(),
        "points/coloring size mismatch"
    );
    let grid = GridIndex::build(points, close_radius.max(0.05));
    let mut min_best = f64::INFINITY;
    let mut local: BTreeMap<u64, f64> = BTreeMap::new();
    for (v, pv) in points.iter().enumerate() {
        if coloring.colors[v] == 0.0 {
            continue;
        }
        local.clear();
        for w in grid.ball(points, *pv, close_radius) {
            let c = coloring.colors[w];
            if c > 0.0 {
                *local.entry(c.to_bits()).or_insert(0.0) += c;
            }
        }
        let best = local.values().copied().fold(0.0f64, f64::max);
        min_best = min_best.min(best);
    }
    min_best
}

/// Combined invariant report for a coloring, as printed by experiments
/// E2/E3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantReport {
    /// Lemma 1 quantity (want: bounded by `C₁`-scale constant).
    pub max_unit_ball_mass: f64,
    /// Lemma 2 quantity (want: at least `C₂`-scale constant).
    pub min_close_mass: f64,
    /// Number of distinct colors (want: `O(log n)`).
    pub num_colors: usize,
}

/// Computes the [`InvariantReport`] with unit balls and close radius
/// `eps/2`.
pub fn invariant_report<P: MetricPoint>(
    points: &[P],
    coloring: &Coloring,
    eps: f64,
) -> InvariantReport {
    InvariantReport {
        max_unit_ball_mass: lemma1_max_ball_mass(points, coloring, 1.0),
        min_close_mass: lemma2_min_close_mass(points, coloring, eps / 2.0),
        num_colors: coloring.num_colors(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;

    #[test]
    fn palette_dedup_and_order() {
        let c = Coloring::new(vec![0.5, 0.25, 0.5, 0.0, 1.0]);
        assert_eq!(c.palette(), vec![0.25, 0.5, 1.0]);
        assert_eq!(c.num_colors(), 3);
    }

    #[test]
    fn lemma1_single_color_cluster() {
        // Four stations in one spot, color 0.1: ball mass 0.4.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.1, 0.0),
            Point2::new(0.0, 0.1),
            Point2::new(0.1, 0.1),
        ];
        let col = Coloring::new(vec![0.1; 4]);
        let m = lemma1_max_ball_mass(&pts, &col, 1.0);
        assert!((m - 0.4).abs() < 1e-12);
    }

    #[test]
    fn lemma1_takes_max_per_color_not_total() {
        // Two colors, 0.3 and 0.2, in the same ball: per-color max is 0.6
        // (two stations of color 0.3), not 1.0.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.1, 0.0),
            Point2::new(0.2, 0.0),
            Point2::new(0.3, 0.0),
        ];
        let col = Coloring::new(vec![0.3, 0.3, 0.2, 0.2]);
        let m = lemma1_max_ball_mass(&pts, &col, 1.0);
        assert!((m - 0.6).abs() < 1e-12);
    }

    #[test]
    fn lemma1_separated_clusters_dont_sum() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(10.0, 0.0)];
        let col = Coloring::new(vec![0.5, 0.5]);
        let m = lemma1_max_ball_mass(&pts, &col, 1.0);
        assert!((m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lemma2_min_over_participants_only() {
        // Station 2 has color 0 => not quantified over.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.01, 0.0),
            Point2::new(5.0, 0.0),
        ];
        let col = Coloring::new(vec![0.2, 0.2, 0.0]);
        let m = lemma2_min_close_mass(&pts, &col, 0.25);
        assert!((m - 0.4).abs() < 1e-12);
    }

    #[test]
    fn lemma2_isolated_station_counts_itself() {
        let pts = vec![Point2::new(0.0, 0.0)];
        let col = Coloring::new(vec![0.05]);
        let m = lemma2_min_close_mass(&pts, &col, 0.25);
        assert!((m - 0.05).abs() < 1e-12);
    }

    #[test]
    fn lemma2_infinite_when_no_participants() {
        let pts = vec![Point2::new(0.0, 0.0)];
        let col = Coloring::new(vec![0.0]);
        assert_eq!(lemma2_min_close_mass(&pts, &col, 0.25), f64::INFINITY);
    }

    #[test]
    fn report_bundles_all_three() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.1, 0.0)];
        let col = Coloring::new(vec![0.25, 0.5]);
        let r = invariant_report(&pts, &col, 0.5);
        assert_eq!(r.num_colors, 2);
        assert!((r.max_unit_ball_mass - 0.5).abs() < 1e-12);
        assert!(r.min_close_mass > 0.0);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let pts = vec![Point2::new(0.0, 0.0)];
        let col = Coloring::new(vec![0.1, 0.2]);
        let _ = lemma1_max_ball_mass(&pts, &col, 1.0);
    }

    #[test]
    fn empty_inputs() {
        let pts: Vec<Point2> = vec![];
        let col = Coloring::new(vec![]);
        assert_eq!(lemma1_max_ball_mass(&pts, &col, 1.0), 0.0);
        assert_eq!(lemma2_min_close_mass(&pts, &col, 0.25), f64::INFINITY);
        assert!(col.is_empty());
    }
}
