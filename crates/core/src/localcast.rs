//! Local broadcast over the coloring backbone.
//!
//! The abstract promises the coloring is "of independent interest and
//! potential applicability to other communication tasks"; local broadcast —
//! every station delivers its *own* message to all its communication-graph
//! neighbours — is the canonical such task (the paper's reference [11]).
//! With the backbone in place, every station simply transmits its message
//! with the Fact 11 probability `p_v·c_ε/(c_b·log n)`: Lemma 1 keeps the
//! per-round interference bounded, Lemma 2 gives every neighbourhood a
//! constant collective transmission rate, and a station with degree Δ
//! collects all Δ neighbour messages in `O((Δ + log n)·log n)` further
//! rounds in expectation.

use std::collections::BTreeSet;

use sinr_geometry::MetricPoint;
use sinr_phy::{Network, NetworkError, SinrParams};
use sinr_runtime::{bernoulli, Engine, NodeCtx, Protocol};

use crate::coloring::ColoringMachine;
use crate::constants::Constants;

/// Message of the local broadcast: the sender's identity (standing in for
/// the sender's payload — O(log n) bits as the model allows).
pub type LocalMsg = usize;

/// Per-node state machine: establish the backbone, then announce own
/// message forever while collecting neighbours' messages.
#[derive(Debug)]
pub struct LocalCastNode {
    id: usize,
    n: usize,
    consts: Constants,
    machine: ColoringMachine,
    coloring_len: u64,
    /// Senders heard so far. Ordered so any iteration over it (coverage
    /// accounting, future table output) is deterministic by construction.
    pub heard: BTreeSet<usize>,
}

impl LocalCastNode {
    /// Creates the state machine for station `id` of `n`.
    pub fn new(id: usize, n: usize, consts: Constants) -> Self {
        LocalCastNode {
            id,
            n,
            consts,
            machine: ColoringMachine::new(n, consts),
            coloring_len: ColoringMachine::total_rounds(n, &consts),
            heard: BTreeSet::new(),
        }
    }
}

impl Protocol for LocalCastNode {
    type Msg = LocalMsg;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<LocalMsg> {
        if ctx.round < self.coloring_len {
            return self.machine.poll_transmit(ctx.rng).then_some(self.id);
        }
        let color = self.machine.color().expect("backbone established");
        let p = self.consts.dissemination_prob(color, self.n);
        bernoulli(ctx.rng, p).then_some(self.id)
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&LocalMsg>) {
        if let Some(&sender) = rx {
            self.heard.insert(sender);
        }
        if ctx.round < self.coloring_len {
            self.machine.on_round_end(rx.is_some());
        }
    }
}

/// Outcome of a local-broadcast run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalCastReport {
    /// Stations in the network.
    pub n: usize,
    /// Rounds until every station had heard all its neighbours (or the
    /// budget).
    pub rounds: u64,
    /// Whether full neighbourhood coverage was reached.
    pub completed: bool,
    /// Directed (neighbour, heard) pairs still missing at the end.
    pub missing_pairs: usize,
}

/// Runs local broadcast until every station has received the message of
/// each of its communication-graph neighbours.
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn run_local_cast<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    consts: Constants,
    seed: u64,
    max_rounds: u64,
) -> Result<LocalCastReport, NetworkError> {
    let net = Network::new(points, *params)?;
    let n = net.len();
    // Snapshot the neighbourhood requirement before the engine takes the
    // network.
    let required: Vec<Vec<usize>> = (0..n)
        .map(|v| net.comm_graph().neighbors(v).to_vec())
        .collect();
    let mut eng = Engine::new(net, seed, |id| LocalCastNode::new(id, n, consts));
    let covered = |eng: &Engine<P, LocalCastNode>| {
        required.iter().enumerate().all(|(v, nbrs)| {
            let heard = &eng.nodes()[v].heard;
            nbrs.iter().all(|u| heard.contains(u))
        })
    };
    // Checking coverage every round is O(m); amortise by checking every 64
    // rounds (the final count is rounded up accordingly).
    let mut rounds = 0;
    let mut completed = false;
    while rounds < max_rounds {
        let step = 64.min(max_rounds - rounds);
        eng.run_rounds(step);
        rounds += step;
        if covered(&eng) {
            completed = true;
            break;
        }
    }
    let missing_pairs = required
        .iter()
        .enumerate()
        .map(|(v, nbrs)| {
            let heard = &eng.nodes()[v].heard;
            nbrs.iter().filter(|u| !heard.contains(u)).count()
        })
        .sum();
    Ok(LocalCastReport {
        n,
        rounds,
        completed,
        missing_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;

    fn fast() -> Constants {
        Constants {
            c0: 4.0,
            c2: 4.0,
            c_prime: 1,
            ..Constants::tuned()
        }
    }

    fn path(n: usize) -> Vec<Point2> {
        (0..n).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect()
    }

    #[test]
    fn covers_path_neighbourhoods() {
        let params = SinrParams::default_plane();
        let rep = run_local_cast(path(6), &params, fast(), 3, 3_000_000).unwrap();
        assert!(rep.completed, "{rep:?}");
        assert_eq!(rep.missing_pairs, 0);
    }

    #[test]
    fn covers_clique() {
        let params = SinrParams::default_plane();
        let pts: Vec<Point2> = (0..8)
            .map(|i| {
                let a = i as f64 * std::f64::consts::FRAC_PI_4;
                Point2::new(0.15 * a.cos(), 0.15 * a.sin())
            })
            .collect();
        let rep = run_local_cast(pts, &params, fast(), 5, 3_000_000).unwrap();
        assert!(rep.completed, "{rep:?}");
    }

    #[test]
    fn isolated_station_trivially_done() {
        let params = SinrParams::default_plane();
        let rep = run_local_cast(vec![Point2::origin()], &params, fast(), 1, 1000).unwrap();
        assert!(rep.completed);
        assert_eq!(rep.missing_pairs, 0);
    }

    #[test]
    fn budget_exhaustion_reports_missing() {
        let params = SinrParams::default_plane();
        let rep = run_local_cast(path(6), &params, fast(), 3, 64).unwrap();
        assert!(!rep.completed);
        assert!(rep.missing_pairs > 0);
    }
}
