//! Consensus in the ad hoc setting (Section 5): agreement on the
//! lexicographically smallest input value in
//! `O(D log n · log x + log² n · log x)` rounds.
//!
//! All stations start simultaneously (global clock). The protocol first
//! establishes a backbone coloring with one `StabilizeProbability`
//! execution, then reveals the minimum value bit by bit, most significant
//! first: in iteration `i`, the stations whose value extends the
//! already-agreed prefix with a `0` bit initiate a wake-up-with-established-
//! coloring inside a window of [`Constants::wakeup_window`] rounds. The
//! window's signal reaches everyone whp iff some station had that `0`
//! extension, so at the window's end every station appends the same bit.
#![allow(clippy::needless_range_loop)]

use sinr_runtime::{bernoulli, NodeCtx, Protocol};

use crate::coloring::ColoringMachine;
use crate::constants::Constants;

/// Message of the consensus protocol: the bit-iteration the signal belongs
/// to (windows are globally aligned, so this is a consistency tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsensusMsg {
    /// Bit iteration index.
    pub iter: u32,
}

/// Per-node consensus state machine.
#[derive(Debug)]
pub struct ConsensusNode {
    value: u64,
    bits: u32,
    n: usize,
    consts: Constants,
    window: u64,
    machine: ColoringMachine,
    coloring_len: u64,
    /// Bits agreed so far (prefix, MSB first).
    agreed: u64,
    iters_done: u32,
    signalled: bool,
}

impl ConsensusNode {
    /// Creates a node with input `value` from the domain `[0, 2^bits)`;
    /// `window` is the per-bit wake-up window
    /// (use [`Constants::wakeup_window`] with a diameter bound).
    ///
    /// # Panics
    ///
    /// Panics if `value >= 2^bits` or `bits` is 0 or exceeds 63.
    pub fn new(value: u64, bits: u32, n: usize, consts: Constants, window: u64) -> Self {
        assert!(bits > 0 && bits < 64, "bits must be in 1..=63, got {bits}");
        assert!(
            value < (1u64 << bits),
            "value {value} outside the {bits}-bit domain"
        );
        assert!(window > 0, "window must be positive");
        ConsensusNode {
            value,
            bits,
            n,
            consts,
            window,
            machine: ColoringMachine::new(n, consts),
            coloring_len: ColoringMachine::total_rounds(n, &consts),
            agreed: 0,
            iters_done: 0,
            signalled: false,
        }
    }

    /// The decided value, once all bit iterations completed.
    pub fn decided(&self) -> Option<u64> {
        (self.iters_done == self.bits).then_some(self.agreed)
    }

    /// This node's input value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Total schedule length: coloring plus `bits` windows.
    pub fn total_rounds(&self) -> u64 {
        self.coloring_len + self.bits as u64 * self.window
    }

    /// Whether this node initiates the wake-up of iteration `iter`: its
    /// value extends the agreed prefix with bit 0.
    fn initiates(&self, iter: u32) -> bool {
        debug_assert!(iter < self.bits);
        let shift = self.bits - 1 - iter;
        (self.value >> shift) == (self.agreed << 1)
    }
}

impl Protocol for ConsensusNode {
    type Msg = ConsensusMsg;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<ConsensusMsg> {
        if ctx.round < self.coloring_len {
            return self
                .machine
                .poll_transmit(ctx.rng)
                .then_some(ConsensusMsg { iter: u32::MAX });
        }
        let t = ctx.round - self.coloring_len;
        let iter = (t / self.window) as u32;
        let pos = t % self.window;
        if iter >= self.bits {
            return None; // protocol over
        }
        if pos == 0 {
            // Window start: initiators raise the signal.
            self.signalled = self.initiates(iter);
        }
        if !self.signalled {
            return None;
        }
        let color = self.machine.color().expect("backbone established");
        let p = self.consts.dissemination_prob(color, self.n);
        bernoulli(ctx.rng, p).then_some(ConsensusMsg { iter })
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&ConsensusMsg>) {
        if ctx.round < self.coloring_len {
            self.machine.on_round_end(rx.is_some());
            return;
        }
        let t = ctx.round - self.coloring_len;
        let iter = (t / self.window) as u32;
        let pos = t % self.window;
        if iter >= self.bits {
            return;
        }
        if let Some(msg) = rx {
            debug_assert_eq!(msg.iter, iter, "signal crossed a window boundary");
            self.signalled = true;
        }
        if pos == self.window - 1 {
            // Window end: a heard (or initiated) signal pins the bit to 0.
            let bit = u64::from(!self.signalled);
            self.agreed = (self.agreed << 1) | bit;
            self.iters_done = iter + 1;
            self.signalled = false;
        }
    }

    fn is_done(&self) -> bool {
        self.iters_done == self.bits
    }
}

/// Number of bits needed for the consensus domain `{0, …, x}`.
pub fn domain_bits(x: u64) -> u32 {
    64 - x.max(1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;
    use sinr_phy::{Network, SinrParams};
    use sinr_runtime::Engine;

    fn fast_consts() -> Constants {
        Constants {
            c0: 4.0,
            c2: 4.0,
            c_prime: 1,
            ..Constants::tuned()
        }
    }

    fn run_consensus_on_path(values: &[u64], bits: u32, seed: u64) -> Vec<Option<u64>> {
        let n = values.len();
        let pts: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
        let net = Network::new(pts, SinrParams::default_plane()).unwrap();
        let consts = fast_consts();
        let window = consts.wakeup_window(n, n as u32);
        let mut eng = Engine::new(net, seed, |id| {
            ConsensusNode::new(values[id], bits, n, consts, window)
        });
        let total = eng.nodes()[0].total_rounds();
        let res = eng.run_until_all_done(total + 10);
        assert!(res.completed, "consensus did not finish in its schedule");
        eng.nodes().iter().map(ConsensusNode::decided).collect()
    }

    #[test]
    fn agrees_on_minimum() {
        let decided = run_consensus_on_path(&[5, 3, 7, 6], 3, 1);
        for d in &decided {
            assert_eq!(*d, Some(3));
        }
    }

    #[test]
    fn all_equal_values() {
        let decided = run_consensus_on_path(&[4, 4, 4], 3, 2);
        assert!(decided.iter().all(|d| *d == Some(4)));
    }

    #[test]
    fn minimum_zero() {
        let decided = run_consensus_on_path(&[2, 0, 3], 2, 3);
        assert!(decided.iter().all(|d| *d == Some(0)));
    }

    #[test]
    fn single_node_decides_own_value() {
        let decided = run_consensus_on_path(&[6], 3, 4);
        assert_eq!(decided[0], Some(6));
    }

    #[test]
    fn initiates_logic() {
        let consts = fast_consts();
        // value 0b101, bits 3.
        let mut node = ConsensusNode::new(0b101, 3, 4, consts, 10);
        // Iter 0: prefix agreed = 0; initiates iff top bit == 0. Top bit is 1.
        assert!(!node.initiates(0));
        // Suppose bit 0 agreed as 1.
        node.agreed = 0b1;
        // Iter 1: initiates iff value >> 1 == agreed<<1 = 0b10. value>>1 = 0b10. Yes.
        assert!(node.initiates(1));
        node.agreed = 0b10;
        // Iter 2: initiates iff value >> 0 == 0b100; value = 0b101. No.
        assert!(!node.initiates(2));
    }

    #[test]
    fn domain_bits_values() {
        assert_eq!(domain_bits(0), 1);
        assert_eq!(domain_bits(1), 1);
        assert_eq!(domain_bits(2), 2);
        assert_eq!(domain_bits(7), 3);
        assert_eq!(domain_bits(8), 4);
    }

    #[test]
    #[should_panic]
    fn value_outside_domain_panics() {
        let _ = ConsensusNode::new(8, 3, 4, fast_consts(), 10);
    }

    #[test]
    fn schedule_length_formula() {
        let consts = fast_consts();
        let node = ConsensusNode::new(1, 4, 16, consts, 100);
        assert_eq!(node.total_rounds(), consts.coloring_rounds(16) + 4 * 100);
    }
}
