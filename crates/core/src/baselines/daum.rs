//! Granularity-dependent baseline in the style of Daum, Gilbert, Kuhn &
//! Newport, *Broadcast in the Ad Hoc SINR Model* (DISC 2013) — the paper's
//! reference [5].
//!
//! Their algorithm assumes stations know the network granularity `R_s` and
//! achieves `O((D log n)·log^{α+1} R_s)` rounds by letting informed stations
//! transmit with probabilities drawn from **density classes** spanning the
//! dynamic range that `R_s` induces: because nearest-neighbour distances
//! vary by a factor of `R_s`, the "right" local transmission probability
//! varies by a polynomial in `R_s`, and the protocol must sweep
//! `K = Θ(log(c·R_s^α))` probability classes to hit the right one for every
//! neighbourhood.
//!
//! This reimplementation keeps that structure — informed stations cycle
//! through transmission probabilities `2^0, 2^{-1}, …, 2^{-K}` — which is
//! the mechanism that produces the `polylog(R_s)` slow-down experiment E6
//! measures (we sweep `R_s` and watch rounds grow, while the paper's
//! algorithm stays flat). It is a *favourable-to-the-baseline* variant: the
//! original needs additional machinery we omit, so measured slow-downs are
//! a lower bound on the original's.

use sinr_runtime::{bernoulli, NodeCtx, Protocol};

/// Message of the decay broadcast: the payload.
pub type DaumMsg = u64;

/// Per-node state machine of the decay-class broadcast.
#[derive(Debug)]
pub struct DaumBroadcastNode {
    payload: Option<u64>,
    informed_at: Option<u64>,
    /// Number of probability classes `K + 1`.
    classes: u32,
}

impl DaumBroadcastNode {
    /// Creates the node. `granularity` is the known `R_s` (≥ 1) and `alpha`
    /// the path-loss exponent; the class count is
    /// `K = ⌈log₂(2·R_s^α)⌉ ∨ ⌈log₂ n⌉` (the `log n` floor keeps the
    /// protocol correct on uniform networks where `R_s ≈ 1` but density
    /// still spans `n`).
    ///
    /// # Panics
    ///
    /// Panics if `granularity < 1` or `alpha` is not finite-positive.
    pub fn new(
        id: usize,
        source: usize,
        payload: u64,
        n: usize,
        granularity: f64,
        alpha: f64,
    ) -> Self {
        assert!(
            granularity >= 1.0,
            "granularity must be >= 1, got {granularity}"
        );
        assert!(alpha.is_finite() && alpha > 0.0, "bad alpha {alpha}");
        let from_rs = (2.0 * granularity.powf(alpha)).log2().ceil().max(1.0) as u32;
        let from_n = crate::constants::log2n(n) as u32;
        DaumBroadcastNode {
            payload: (id == source).then_some(payload),
            informed_at: (id == source).then_some(0),
            classes: from_rs.max(from_n) + 1,
        }
    }

    /// Whether the node holds the message.
    pub fn informed(&self) -> bool {
        self.payload.is_some()
    }

    /// Round at which the node became informed.
    pub fn informed_at(&self) -> Option<u64> {
        self.informed_at
    }

    /// Number of probability classes being cycled.
    pub fn classes(&self) -> u32 {
        self.classes
    }
}

impl Protocol for DaumBroadcastNode {
    type Msg = DaumMsg;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<DaumMsg> {
        let payload = self.payload?;
        // Cycle classes: in round t use probability 2^{-(t mod (K+1))}.
        let class = (ctx.round % self.classes as u64) as i32;
        let p = 2f64.powi(-class);
        bernoulli(ctx.rng, p).then_some(payload)
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&DaumMsg>) {
        if let Some(&msg) = rx {
            if self.payload.is_none() {
                self.payload = Some(msg);
                self.informed_at = Some(ctx.round);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.informed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;
    use sinr_phy::{Network, SinrParams};
    use sinr_runtime::Engine;

    #[test]
    fn class_count_grows_with_granularity() {
        let a = DaumBroadcastNode::new(0, 0, 1, 16, 1.0, 3.0);
        let b = DaumBroadcastNode::new(0, 0, 1, 16, 1024.0, 3.0);
        assert!(b.classes() > a.classes());
        // alpha multiplies the exponent: log2(2 * 1024^3) = 31.
        assert_eq!(b.classes(), 32);
    }

    #[test]
    fn log_n_floor_applies() {
        let nd = DaumBroadcastNode::new(0, 0, 1, 1 << 20, 1.0, 3.0);
        assert!(nd.classes() >= 21);
    }

    #[test]
    fn completes_on_short_path() {
        let n = 5;
        let pts: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
        let net = Network::new(pts, SinrParams::default_plane()).unwrap();
        let rs = net.granularity().unwrap();
        let mut eng = Engine::new(net, 3, |id| DaumBroadcastNode::new(id, 0, 9, n, rs, 3.0));
        let res = eng.run_until_all_done(100_000);
        assert!(res.completed);
        assert!(eng.nodes().iter().all(DaumBroadcastNode::informed));
    }

    #[test]
    #[should_panic]
    fn rejects_granularity_below_one() {
        let _ = DaumBroadcastNode::new(0, 0, 1, 4, 0.5, 3.0);
    }
}
