//! GPS-oracle broadcast: the "full geometry knowledge" gold standard.
//!
//! The paper's title question is how much *knowing the geometry* helps ad
//! hoc communication: references [14, 15] achieve `O(D log n + log² n)` /
//! `O(D log² n)` when stations know their own coordinates. This baseline
//! gives geometry knowledge its strongest form — a **grid TDMA with a
//! contention oracle**:
//!
//! * the plane is cut into cells small enough that a lone transmission
//!   reaches the whole 8-neighbourhood of its cell;
//! * cells are `k × k`-colored and time slots cycle through the `k²`
//!   classes, with `k` chosen so simultaneously active cells are far enough
//!   apart that their mutual interference cannot break an in-range decode;
//! * within an active cell, each informed station transmits with
//!   probability `1/(informed stations in the cell)` — a quantity no
//!   distributed station could know (it is exactly what the paper's
//!   coloring *estimates* without geometry); the simulator provides it as
//!   an oracle.
//!
//! Comparing the paper's algorithms against this oracle measures the price
//! of *not* knowing the geometry — the reproduction's answer to the title.

use std::collections::BTreeMap;

use sinr_geometry::MetricPoint;
use sinr_phy::{Network, NetworkError, SinrParams};
use sinr_runtime::{bernoulli, node_rng};

use crate::run::BroadcastReport;

/// Cell side: a lone transmission from a cell must reach every point of the
/// 8-neighbourhood, whose farthest point lies `2·√2·side` away; with reach
/// `1 − ε` this gives `side = (1 − ε)/(2√2)`.
fn cell_side(params: &SinrParams) -> f64 {
    params.comm_radius() / (2.0 * std::f64::consts::SQRT_2)
}

/// Class-grid period: simultaneously active same-class cells are `k·side`
/// apart; `k·side ≥ 2` keeps the aggregate far interference below the
/// Fact 3 margin for in-neighbourhood decodes at the default parameters.
fn class_period(params: &SinrParams) -> usize {
    (2.0 / cell_side(params)).ceil() as usize
}

fn cell_of<P: MetricPoint>(p: &P, side: f64) -> (i64, i64) {
    (
        (p.coord(0) / side).floor() as i64,
        if P::AXES > 1 {
            (p.coord(1) / side).floor() as i64
        } else {
            0
        },
    )
}

/// Runs the GPS-oracle grid-TDMA broadcast from `source`.
///
/// # Errors
///
/// Propagates network-construction failures.
pub fn run_gps_oracle_broadcast<P: MetricPoint>(
    points: Vec<P>,
    params: &SinrParams,
    source: usize,
    seed: u64,
    max_rounds: u64,
) -> Result<BroadcastReport, NetworkError> {
    let net = Network::new(points, *params)?;
    Ok(run_gps_oracle_on(&net, source, seed, max_rounds))
}

/// The oracle TDMA loop over an already-constructed network (shared by the
/// public runner and the `sim` dispatch).
pub(crate) fn run_gps_oracle_on<P: MetricPoint>(
    net: &Network<P>,
    source: usize,
    seed: u64,
    max_rounds: u64,
) -> BroadcastReport {
    let params = net.params();
    let n = net.len();
    let side = cell_side(params);
    let k = class_period(params) as i64;

    let cells: Vec<(i64, i64)> = net.points().iter().map(|p| cell_of(p, side)).collect();
    let mut informed = vec![false; n];
    if n > 0 {
        informed[source] = true;
    }
    let mut rngs: Vec<_> = (0..n).map(|i| node_rng(seed, i as u64, 2)).collect();

    let mut total_tx = 0u64;
    let mut rounds = 0u64;
    let mut informed_count = if n > 0 { 1 } else { 0 };
    let mut tx_buf: Vec<usize> = Vec::new();
    while informed_count < n && rounds < max_rounds {
        // Active class this round.
        let slot = (rounds % (k * k) as u64) as i64;
        let (class_x, class_y) = (slot % k, slot / k);
        // Oracle: informed population of every active cell. Ordered map so
        // that any future iteration over the oracle's view stays
        // deterministic (today only keyed lookups below depend on it).
        let mut cell_pop: BTreeMap<(i64, i64), u32> = BTreeMap::new();
        for v in 0..n {
            let c = cells[v];
            if informed[v] && c.0.rem_euclid(k) == class_x && c.1.rem_euclid(k) == class_y {
                *cell_pop.entry(c).or_insert(0) += 1;
            }
        }
        tx_buf.clear();
        for v in 0..n {
            let c = cells[v];
            if let Some(&pop) = cell_pop.get(&c) {
                if informed[v] && bernoulli(&mut rngs[v], 1.0 / pop as f64) {
                    tx_buf.push(v);
                }
            }
        }
        total_tx += tx_buf.len() as u64;
        let outcome = net.resolve(&tx_buf);
        for (inf, decoded) in informed.iter_mut().zip(&outcome.decoded_from) {
            if !*inf && decoded.is_some() {
                *inf = true;
                informed_count += 1;
            }
        }
        rounds += 1;
    }
    BroadcastReport {
        n,
        rounds,
        completed: informed_count == n,
        informed: informed_count,
        total_transmissions: total_tx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;

    fn params() -> SinrParams {
        SinrParams::default_plane()
    }

    #[test]
    fn cell_geometry_constants() {
        let p = params();
        let side = cell_side(&p);
        assert!((side - 0.5 / (2.0 * std::f64::consts::SQRT_2)).abs() < 1e-12);
        // A lone transmission spans the 8-neighbourhood.
        assert!(2.0 * std::f64::consts::SQRT_2 * side <= p.comm_radius() + 1e-12);
        assert!(class_period(&p) as f64 * side >= 2.0);
    }

    #[test]
    fn completes_on_path() {
        let p = params();
        let pts: Vec<Point2> = (0..8).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
        let rep = run_gps_oracle_broadcast(pts, &p, 0, 3, 1_000_000).unwrap();
        assert!(rep.completed, "{rep:?}");
        assert_eq!(rep.informed, 8);
    }

    #[test]
    fn completes_on_dense_cell() {
        // 60 stations inside ONE cell: the oracle's 1/pop contention makes
        // this routine; a fixed-probability scheme would jam.
        let p = params();
        let pts: Vec<Point2> = (0..60)
            .map(|i| {
                let a = i as f64 * 0.105;
                Point2::new(0.08 * a.cos(), 0.08 * a.sin())
            })
            .collect();
        let rep = run_gps_oracle_broadcast(pts, &p, 0, 5, 1_000_000).unwrap();
        assert!(rep.completed, "{rep:?}");
    }

    #[test]
    fn empty_and_singleton() {
        let p = params();
        let rep = run_gps_oracle_broadcast(vec![Point2::origin()], &p, 0, 1, 100).unwrap();
        assert!(rep.completed);
        assert_eq!(rep.rounds, 0);
    }

    #[test]
    fn deterministic() {
        let p = params();
        let pts: Vec<Point2> = (0..10).map(|i| Point2::new(i as f64 * 0.4, 0.0)).collect();
        let a = run_gps_oracle_broadcast(pts.clone(), &p, 0, 7, 1_000_000).unwrap();
        let b = run_gps_oracle_broadcast(pts, &p, 0, 7, 1_000_000).unwrap();
        assert_eq!(a, b);
    }
}
