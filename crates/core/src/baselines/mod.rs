//! Baseline broadcast algorithms the paper is compared against.
//!
//! * [`daum`] — granularity-dependent decay-class broadcast in the style of
//!   Daum et al. (DISC 2013), the paper's reference [5];
//! * [`flood`] — naive fixed-probability flooding;
//! * [`local`] — adaptive local-broadcast-style flooding after
//!   Halldórsson & Mitra (FOMC 2012), the paper's reference [11];
//! * [`gps`] — the GPS-oracle grid TDMA, full geometry knowledge in its
//!   strongest form (the yardstick for the paper's title question);
//! * [`reflood`] — burst-based re-flooding, the mobility/churn-aware
//!   flooding variant that re-seeds on topology changes.

pub mod daum;
pub mod flood;
pub mod gps;
pub mod local;
pub mod reflood;

pub use daum::DaumBroadcastNode;
pub use flood::FloodNode;
pub use gps::run_gps_oracle_broadcast;
pub use local::LocalBroadcastNode;
pub use reflood::ReFloodNode;
