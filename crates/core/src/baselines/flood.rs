//! Fixed-probability flooding — the naive baseline.
//!
//! Every informed station transmits the message with the same fixed
//! probability `p` each round. On networks of homogeneous density there is
//! a good `p` (≈ 1/(local density)), but no single `p` works across a
//! network whose density varies — experiment E9 demonstrates the failure
//! mode that motivates the paper's density-adaptive coloring.

use sinr_runtime::{bernoulli, NodeCtx, Protocol};

/// Per-node state machine of fixed-probability flooding.
#[derive(Debug)]
pub struct FloodNode {
    payload: Option<u64>,
    informed_at: Option<u64>,
    p: f64,
}

impl FloodNode {
    /// Creates the node; every informed station transmits with probability
    /// `p` per round.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    pub fn new(id: usize, source: usize, payload: u64, p: f64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "flood probability must be in (0,1], got {p}"
        );
        FloodNode {
            payload: (id == source).then_some(payload),
            informed_at: (id == source).then_some(0),
            p,
        }
    }

    /// Whether the node holds the message.
    pub fn informed(&self) -> bool {
        self.payload.is_some()
    }

    /// Round at which the node became informed.
    pub fn informed_at(&self) -> Option<u64> {
        self.informed_at
    }
}

impl Protocol for FloodNode {
    type Msg = u64;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<u64> {
        let payload = self.payload?;
        bernoulli(ctx.rng, self.p).then_some(payload)
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&u64>) {
        if let Some(&msg) = rx {
            if self.payload.is_none() {
                self.payload = Some(msg);
                self.informed_at = Some(ctx.round);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.informed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;
    use sinr_phy::{Network, SinrParams};
    use sinr_runtime::Engine;

    #[test]
    fn floods_sparse_path_quickly() {
        let n = 5;
        let pts: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
        let net = Network::new(pts, SinrParams::default_plane()).unwrap();
        let mut eng = Engine::new(net, 1, |id| FloodNode::new(id, 0, 3, 0.3));
        let res = eng.run_until_all_done(10_000);
        assert!(res.completed);
    }

    #[test]
    fn dense_clique_with_high_p_struggles() {
        // A 30-station clique plus one outlier within range. After round 1
        // the whole clique is informed; with p = 0.9 the 30 transmitters
        // jam each other and essentially never deliver to the outlier,
        // while p = 0.05 gives a constant per-round success probability.
        let n = 30;
        let mut pts: Vec<Point2> = (0..n)
            .map(|i| {
                let ang = i as f64 * 0.21;
                Point2::new(0.05 * ang.cos(), 0.05 * ang.sin())
            })
            .collect();
        pts.push(Point2::new(0.4, 0.0)); // outlier, inside comm range
        let run = |p: f64| {
            let net = Network::new(pts.clone(), SinrParams::default_plane()).unwrap();
            // Whole clique informed from the start (source = own id);
            // only the outlier needs the message.
            let mut eng = Engine::new(net, 7, |id| {
                FloodNode::new(id, if id < n { id } else { usize::MAX }, 3, p)
            });
            eng.run_until_all_done(5_000)
        };
        let high = run(0.9);
        let low = run(0.05);
        assert!(low.completed, "low-p flooding should finish: {low:?}");
        assert!(
            !high.completed || high.rounds > low.rounds,
            "high-p flooding should be slower: {high:?} vs {low:?}"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_zero_probability() {
        let _ = FloodNode::new(0, 0, 1, 0.0);
    }
}
