//! Re-flooding broadcast — the mobility/churn-aware flooding variant.
//!
//! Plain flooding ([`crate::baselines::flood`]) keeps every informed
//! station transmitting forever, so it reaches late joiners but burns
//! energy linearly in the run length. The re-flooding variant is
//! **burst-based**: an informed station floods (probability `p` per
//! round) for a fixed burst of rounds, then goes dormant — and *re-seeds*
//! a fresh burst whenever the epoch-refreshed communication graph reports
//! that the topology changed in a way that can leave somebody uninformed:
//!
//! * a station joined or rejoined ([`TopologyChange::joined`] — it starts
//!   uninformed, or rejoined at a position in a new component);
//! * the live graph is, or just was, disconnected
//!   ([`TopologyChange::may_alter_reachability`]): a partition may have
//!   healed, or motion may have spliced stations between components that
//!   remain separate overall — either way somebody newly reachable may be
//!   uninformed;
//! * the node itself rejoined the network while informed
//!   ([`sinr_runtime::Protocol::on_join`] — its new position may sit in a
//!   component that never heard the message).
//!
//! On a static topology this degrades gracefully to "flood for one burst,
//! then stop" — and under churn it keeps total transmissions proportional
//! to the number of topology events rather than the run length (see
//! `examples/churn_broadcast.rs` for the measured comparison).

use sinr_runtime::{bernoulli, NodeCtx, Protocol, TopologyChange};

/// Per-node state machine of burst-based re-flooding broadcast.
#[derive(Debug)]
pub struct ReFloodNode {
    payload: Option<u64>,
    informed_at: Option<u64>,
    p: f64,
    /// Rounds of active flooding granted per (re)seed.
    burst: u64,
    /// Rounds of active flooding remaining.
    active_left: u64,
}

impl ReFloodNode {
    /// Creates the node; each (re)seed lets an informed station transmit
    /// with probability `p` per round for `burst` rounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1` and `burst > 0`.
    pub fn new(id: usize, source: usize, payload: u64, p: f64, burst: u64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "re-flood probability must be in (0,1], got {p}"
        );
        assert!(burst > 0, "re-flood burst must last at least one round");
        let informed = id == source;
        ReFloodNode {
            payload: informed.then_some(payload),
            informed_at: informed.then_some(0),
            p,
            burst,
            active_left: if informed { burst } else { 0 },
        }
    }

    /// Whether the node holds the message.
    pub fn informed(&self) -> bool {
        self.payload.is_some()
    }

    /// Round at which the node became informed.
    pub fn informed_at(&self) -> Option<u64> {
        self.informed_at
    }

    /// Whether the node is currently in an active flooding burst.
    pub fn active(&self) -> bool {
        self.payload.is_some() && self.active_left > 0
    }

    /// Grants a fresh flooding burst if the node is informed.
    fn reseed(&mut self) {
        if self.payload.is_some() {
            self.active_left = self.burst;
        }
    }
}

impl Protocol for ReFloodNode {
    type Msg = u64;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<u64> {
        if self.active_left == 0 {
            return None;
        }
        let payload = self.payload?;
        bernoulli(ctx.rng, self.p).then_some(payload)
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&u64>) {
        if self.active_left > 0 {
            self.active_left -= 1;
        }
        if let Some(&msg) = rx {
            if self.payload.is_none() {
                self.payload = Some(msg);
                self.informed_at = Some(ctx.round);
                self.active_left = self.burst;
            }
        }
    }

    fn is_done(&self) -> bool {
        // Dormancy is not incompleteness: the goal is holding the
        // message, not transmitting it.
        self.informed()
    }

    fn on_join(&mut self, _ctx: &mut NodeCtx<'_>) {
        // A rejoining station keeps its memory; if it was informed, its
        // new random position may lie in an uninformed component —
        // re-seed. (Freshly spawned nodes are uninformed; no-op.)
        self.reseed();
    }

    fn on_topology_change(&mut self, _ctx: &mut NodeCtx<'_>, change: &TopologyChange) {
        if change.may_alter_reachability() {
            self.reseed();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;
    use sinr_phy::{ChurnDelta, Network, SinrParams};
    use sinr_runtime::Engine;

    fn line_net(n: usize) -> Network<Point2> {
        let pts: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
        Network::new(pts, SinrParams::default_plane()).unwrap()
    }

    #[test]
    fn floods_a_path_then_goes_dormant() {
        let mut eng = Engine::new(line_net(5), 1, |id| ReFloodNode::new(id, 0, 3, 0.3, 200));
        let res = eng.run_until_all_done(10_000);
        assert!(res.completed);
        // Burn down every remaining burst: transmissions must stop.
        eng.run_rounds(300);
        let tx_after_dormant = eng.trace().total_transmissions();
        eng.run_rounds(100);
        assert_eq!(
            eng.trace().total_transmissions(),
            tx_after_dormant,
            "dormant nodes keep silent on a static topology"
        );
        assert!(eng.nodes().iter().all(|nd| !nd.active()));
    }

    #[test]
    fn reseeds_when_a_station_joins() {
        // Source informs station 1, bursts expire, then a new station
        // spawns in range: the topology event re-seeds flooding and the
        // newcomer still learns the message.
        let mut eng = Engine::new(line_net(2), 7, |id| ReFloodNode::new(id, 0, 3, 0.5, 20));
        eng.set_churn(
            60,
            |epoch, _, delta: &mut ChurnDelta<Point2>| {
                if epoch == 1 {
                    delta.spawns.push(Point2::new(0.2, 0.3));
                }
            },
            |id| ReFloodNode::new(id, usize::MAX, 3, 0.5, 20),
        );
        eng.run_rounds(55);
        assert!(eng.nodes()[1].informed());
        assert!(
            eng.nodes().iter().all(|nd| !nd.active()),
            "bursts exhausted before the join"
        );
        eng.run_rounds(60);
        assert_eq!(eng.nodes().len(), 3);
        assert!(
            eng.nodes()[2].informed(),
            "re-seeded burst reached the spawned station"
        );
    }

    #[test]
    fn reseeds_when_mobility_splices_a_disconnected_graph() {
        // Three components: the informed pair {0, 1}, the far station 2,
        // and the farther station 3 — the live graph stays disconnected
        // the whole run. After the bursts expire, mobility moves 2 next
        // to the informed (dormant) pair; the boundary reports a still-
        // disconnected graph with no joins, which must nevertheless
        // re-seed flooding (reachability changed) so 2 learns the
        // message.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.45, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(20.0, 0.0),
        ];
        let net = Network::new(pts, SinrParams::default_plane()).unwrap();
        let mut eng = Engine::new(net, 7, |id| ReFloodNode::new(id, 0, 3, 0.5, 20));
        eng.set_mobility(40, |epoch, pts: &mut [Point2]| {
            if epoch == 1 {
                pts[2] = Point2::new(0.2, 0.35);
            }
        });
        eng.run_rounds(38);
        assert!(eng.nodes()[1].informed());
        assert!(!eng.nodes()[2].informed());
        assert!(
            eng.nodes().iter().all(|nd| !nd.active()),
            "bursts exhausted before the move"
        );
        eng.run_rounds(42);
        assert!(
            eng.nodes()[2].informed(),
            "re-seeded burst reached the spliced-in station"
        );
        assert!(!eng.nodes()[3].informed(), "station 3 stays unreachable");
    }

    #[test]
    #[should_panic]
    fn rejects_zero_burst() {
        let _ = ReFloodNode::new(0, 0, 1, 0.5, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_probability() {
        let _ = ReFloodNode::new(0, 0, 1, 0.0, 10);
    }
}
