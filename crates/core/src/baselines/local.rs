//! Local-broadcast-style adaptive flooding, after Halldórsson & Mitra,
//! *Towards Tight Bounds for Local Broadcasting* (FOMC 2012) — the paper's
//! reference [11].
//!
//! Each informed station starts from a very small transmission probability
//! and doubles it after every quiet stretch, halving on congestion
//! (receiving "too many" messages). This adapts to local density like the
//! paper's DensityTest does, but *without* the Playoff step that
//! distinguishes `B(v, ε/2)` density from `B(v, 1)` density — so as a
//! global broadcast it carries the `O(D(Δ + log n) log n)` shape the paper
//! quotes for local-broadcast-based solutions, and the A2 ablation uses it
//! to show what the Playoff buys.

use sinr_runtime::{bernoulli, NodeCtx, Protocol};

use crate::constants::log2n;

/// Per-node adaptive flooding state machine.
#[derive(Debug)]
pub struct LocalBroadcastNode {
    payload: Option<u64>,
    informed_at: Option<u64>,
    p: f64,
    p_floor: f64,
    p_cap: f64,
    /// Rounds in the current observation window.
    window_rounds: u64,
    /// Receptions observed in the current window.
    window_rx: u64,
    /// Observation window length (`log n` rounds).
    window_len: u64,
}

impl LocalBroadcastNode {
    /// Creates the node; probabilities adapt within `[1/(2n), p_cap]`.
    pub fn new(id: usize, source: usize, payload: u64, n: usize, p_cap: f64) -> Self {
        assert!(
            p_cap > 0.0 && p_cap <= 1.0,
            "p_cap must be in (0,1], got {p_cap}"
        );
        let p_floor = 1.0 / (2.0 * n.max(1) as f64);
        LocalBroadcastNode {
            payload: (id == source).then_some(payload),
            informed_at: (id == source).then_some(0),
            p: p_floor.min(p_cap),
            p_floor: p_floor.min(p_cap),
            p_cap,
            window_rounds: 0,
            window_rx: 0,
            window_len: log2n(n).max(2),
        }
    }

    /// Whether the node holds the message.
    pub fn informed(&self) -> bool {
        self.payload.is_some()
    }

    /// Round at which the node became informed.
    pub fn informed_at(&self) -> Option<u64> {
        self.informed_at
    }

    /// Current adaptive transmission probability (diagnostics).
    pub fn current_p(&self) -> f64 {
        self.p
    }
}

impl Protocol for LocalBroadcastNode {
    type Msg = u64;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<u64> {
        let payload = self.payload?;
        bernoulli(ctx.rng, self.p).then_some(payload)
    }

    fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&u64>) {
        if let Some(&msg) = rx {
            if self.payload.is_none() {
                self.payload = Some(msg);
                self.informed_at = Some(ctx.round);
                return; // start adapting from the next round
            }
        }
        if self.payload.is_none() {
            return;
        }
        self.window_rounds += 1;
        if rx.is_some() {
            self.window_rx += 1;
        }
        if self.window_rounds >= self.window_len {
            // Quiet window: too few receptions means the neighbourhood is
            // under-transmitting — double. Congested window: halve.
            if self.window_rx == 0 {
                self.p = (self.p * 2.0).min(self.p_cap);
            } else if self.window_rx > self.window_len / 2 {
                self.p = (self.p / 2.0).max(self.p_floor);
            }
            self.window_rounds = 0;
            self.window_rx = 0;
        }
    }

    fn is_done(&self) -> bool {
        self.informed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;
    use sinr_phy::{Network, SinrParams};
    use sinr_runtime::Engine;

    #[test]
    fn completes_on_path() {
        let n = 5;
        let pts: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * 0.45, 0.0)).collect();
        let net = Network::new(pts, SinrParams::default_plane()).unwrap();
        let mut eng = Engine::new(net, 2, |id| LocalBroadcastNode::new(id, 0, 4, n, 0.5));
        let res = eng.run_until_all_done(100_000);
        assert!(res.completed);
    }

    #[test]
    fn probability_rises_from_floor_in_isolation() {
        let n = 64;
        let mut node = LocalBroadcastNode::new(0, 0, 1, n, 0.5);
        let p0 = node.current_p();
        let mut rng = sinr_runtime::node_rng(0, 0, 0);
        for r in 0..200 {
            let mut ctx = NodeCtx {
                id: 0,
                round: r,
                n,
                rng: &mut rng,
            };
            let _ = node.poll_transmit(&mut ctx);
            node.on_round_end(&mut ctx, false, None);
        }
        assert!(
            node.current_p() > p0 * 8.0,
            "p did not grow: {}",
            node.current_p()
        );
    }

    #[test]
    fn sleeping_node_does_not_adapt() {
        let n = 16;
        let mut node = LocalBroadcastNode::new(1, 0, 1, n, 0.5);
        let p0 = node.current_p();
        let mut rng = sinr_runtime::node_rng(0, 1, 0);
        for r in 0..100 {
            let mut ctx = NodeCtx {
                id: 1,
                round: r,
                n,
                rng: &mut rng,
            };
            assert!(node.poll_transmit(&mut ctx).is_none());
            node.on_round_end(&mut ctx, false, None);
        }
        assert_eq!(node.current_p(), p0);
        assert!(!node.informed());
    }

    #[test]
    #[should_panic]
    fn rejects_bad_cap() {
        let _ = LocalBroadcastNode::new(0, 0, 1, 4, 1.5);
    }
}
