//! Integration tests: the coloring invariants (Lemmas 1 and 2) hold under
//! the tuned constants across the experiment topology families.
//!
//! The asserted bounds are deliberately loose multiples of the configured
//! constants — the lemmas promise *some* constants C₁, C₂ independent of n
//! and topology; experiments E2/E3 chart the exact values.

use sinr_core::{invariant_report, run_stabilize, Constants};
use sinr_netgen::{cluster, line, uniform};
use sinr_phy::SinrParams;

/// Loose upper bound certifying "Lemma 1-like" behaviour.
fn lemma1_bound(consts: &Constants) -> f64 {
    consts.c1_cap * 4.0
}

/// Loose lower bound certifying "Lemma 2-like" behaviour: never-quitting
/// stations contribute their own `2·p_max`, and the Playoff gate should not
/// let anyone quit with close-ball mass far below `p_max`.
fn lemma2_bound(consts: &Constants) -> f64 {
    consts.p_max / 2.0
}

fn check(points: Vec<sinr_geometry::Point2>, label: &str, seed: u64) {
    let params = SinrParams::default_plane();
    let consts = Constants::tuned();
    let n = points.len();
    let run = run_stabilize(points.clone(), &params, consts, seed).expect("network valid");
    let report = invariant_report(&points, &run.coloring, params.eps());
    eprintln!(
        "[{label}] n={n} colors={} lemma1={:.3} lemma2={:.4}",
        report.num_colors, report.max_unit_ball_mass, report.min_close_mass
    );
    assert!(
        report.max_unit_ball_mass <= lemma1_bound(&consts),
        "[{label}] Lemma 1 violated: max per-color unit-ball mass {} > {}",
        report.max_unit_ball_mass,
        lemma1_bound(&consts)
    );
    assert!(
        report.min_close_mass >= lemma2_bound(&consts),
        "[{label}] Lemma 2 violated: min close-ball best-color mass {} < {}",
        report.min_close_mass,
        lemma2_bound(&consts)
    );
    // Fact: the number of colors is O(log n) — concretely bounded by the
    // number of doubling levels plus the terminal color.
    assert!(
        report.num_colors as u64 <= consts.num_levels(n) as u64 + 1,
        "[{label}] too many colors: {}",
        report.num_colors
    );
}

#[test]
fn invariants_on_uniform_square() {
    let params = SinrParams::default_plane();
    let pts = uniform::connected_square(192, 2.5, &params, 11).expect("connected instance");
    check(pts, "uniform", 1);
}

#[test]
fn invariants_on_dense_uniform_square() {
    let params = SinrParams::default_plane();
    let pts = uniform::connected_square(256, 1.2, &params, 13).expect("connected instance");
    check(pts, "dense-uniform", 2);
}

#[test]
fn invariants_on_cluster_chain() {
    let params = SinrParams::default_plane();
    let pts = cluster::chain_for_diameter(6, 24, &params, 17);
    check(pts, "cluster-chain", 3);
}

#[test]
fn invariants_on_geometric_line() {
    // The adversarial footnote-2 construction: exponentially varying gaps.
    let pts = line::halving_line(48, 0.5, 0.5, 2e-9);
    check(pts, "geometric-line", 4);
}

#[test]
fn invariants_on_granularity_line() {
    let params = SinrParams::default_plane();
    let pts = line::granularity_line(64, params.comm_radius(), 1e6, 2e-9);
    check(pts, "granularity-line", 5);
}
