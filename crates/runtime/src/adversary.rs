//! Adversarial wake-up schedules (paper Section 5, "Adhoc wake-up").
//!
//! In the wake-up problem each node either wakes up spontaneously at an
//! adversary-chosen round or is activated by receiving a message. A
//! [`WakeSchedule`] describes the adversary's choices; running time is
//! counted from the first spontaneous wake-up.

/// An adversary's assignment of spontaneous wake-up rounds to nodes.
///
/// `None` means the node never wakes spontaneously (it can still be woken by
/// receiving a message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WakeSchedule {
    /// All nodes wake at the given round (the spontaneous-wake-up model).
    AllAt(u64),
    /// Only the listed nodes wake, each at its own round.
    Selected(Vec<(usize, u64)>),
    /// Node `i` wakes at round `start + i * gap` (a rolling front).
    Staggered {
        /// Round at which node 0 wakes.
        start: u64,
        /// Gap between consecutive node wake-ups.
        gap: u64,
    },
}

impl WakeSchedule {
    /// A single spontaneous waker (the broadcast source pattern).
    pub fn single(node: usize, round: u64) -> Self {
        WakeSchedule::Selected(vec![(node, round)])
    }

    /// The spontaneous wake-up round of `node`, if any.
    pub fn wake_round(&self, node: usize) -> Option<u64> {
        match self {
            WakeSchedule::AllAt(r) => Some(*r),
            WakeSchedule::Selected(list) => list.iter().find(|(n, _)| *n == node).map(|(_, r)| *r),
            WakeSchedule::Staggered { start, gap } => Some(start + node as u64 * gap),
        }
    }

    /// Round of the earliest spontaneous wake-up among `n` nodes, if any
    /// node ever wakes. Running-time accounting starts here.
    pub fn first_wake(&self, n: usize) -> Option<u64> {
        (0..n).filter_map(|v| self.wake_round(v)).min()
    }

    /// Whether `node` is spontaneously awake at `round`.
    pub fn awake(&self, node: usize, round: u64) -> bool {
        self.wake_round(node).is_some_and(|w| w <= round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_at() {
        let s = WakeSchedule::AllAt(5);
        assert_eq!(s.wake_round(3), Some(5));
        assert!(!s.awake(3, 4));
        assert!(s.awake(3, 5));
        assert_eq!(s.first_wake(10), Some(5));
    }

    #[test]
    fn selected() {
        let s = WakeSchedule::Selected(vec![(2, 7), (5, 3)]);
        assert_eq!(s.wake_round(2), Some(7));
        assert_eq!(s.wake_round(5), Some(3));
        assert_eq!(s.wake_round(0), None);
        assert_eq!(s.first_wake(6), Some(3));
        assert_eq!(s.first_wake(2), None, "no selected node below index 2");
    }

    #[test]
    fn staggered() {
        let s = WakeSchedule::Staggered { start: 10, gap: 4 };
        assert_eq!(s.wake_round(0), Some(10));
        assert_eq!(s.wake_round(3), Some(22));
        assert_eq!(s.first_wake(4), Some(10));
    }

    #[test]
    fn single_source() {
        let s = WakeSchedule::single(4, 0);
        assert_eq!(s.wake_round(4), Some(0));
        assert_eq!(s.wake_round(0), None);
    }
}
