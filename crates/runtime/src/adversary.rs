//! Adversaries: wake-up schedules and fault plans.
//!
//! Two adversary models live here:
//!
//! * [`WakeSchedule`] (paper Section 5, "Adhoc wake-up"): each node either
//!   wakes up spontaneously at an adversary-chosen round or is activated
//!   by receiving a message; running time is counted from the first
//!   spontaneous wake-up.
//! * [`FaultPlan`]: an *active* adversary that injects targeted faults —
//!   crashes, temporary blackouts, jamming — at epoch boundaries. Fault
//!   plans are deterministic (seed-derived where randomized), see the
//!   crate's determinism contract; the engine translates their
//!   [`FaultDelta`]s into ordinary `ChurnDelta`s and a jam mask, so
//!   faults ride the same transaction path as churn and stay bitwise
//!   thread-count-invariant.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sinr_phy::{CommGraph, GraphScratch};

/// An adversary's assignment of spontaneous wake-up rounds to nodes.
///
/// `None` means the node never wakes spontaneously (it can still be woken by
/// receiving a message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WakeSchedule {
    /// All nodes wake at the given round (the spontaneous-wake-up model).
    AllAt(u64),
    /// Only the listed nodes wake, each at its own round. When a node id
    /// appears more than once, the **first** entry wins (later entries
    /// are ignored by every query).
    Selected(Vec<(usize, u64)>),
    /// Node `i` wakes at round `start + i * gap` (a rolling front).
    Staggered {
        /// Round at which node 0 wakes.
        start: u64,
        /// Gap between consecutive node wake-ups.
        gap: u64,
    },
}

impl WakeSchedule {
    /// A single spontaneous waker (the broadcast source pattern).
    pub fn single(node: usize, round: u64) -> Self {
        WakeSchedule::Selected(vec![(node, round)])
    }

    /// The spontaneous wake-up round of `node`, if any. For
    /// [`WakeSchedule::Selected`] with duplicate ids the first entry wins.
    pub fn wake_round(&self, node: usize) -> Option<u64> {
        match self {
            WakeSchedule::AllAt(r) => Some(*r),
            WakeSchedule::Selected(list) => list.iter().find(|(n, _)| *n == node).map(|(_, r)| *r),
            WakeSchedule::Staggered { start, gap } => Some(start + node as u64 * gap),
        }
    }

    /// Round of the earliest spontaneous wake-up among the nodes
    /// `0..n`, if any such node ever wakes. Running-time accounting
    /// starts here.
    pub fn first_wake(&self, n: usize) -> Option<u64> {
        if n == 0 {
            return None;
        }
        match self {
            WakeSchedule::AllAt(r) => Some(*r),
            // One pass over the list (not one `wake_round` scan per
            // node, which was O(n·|list|)): out-of-range ids are
            // skipped, and because duplicate ids resolve to their first
            // entry, later duplicates must not shrink the minimum — a
            // sorted seen-list filters them out.
            WakeSchedule::Selected(list) => {
                let mut seen: Vec<usize> = Vec::with_capacity(list.len());
                let mut min: Option<u64> = None;
                for &(node, round) in list {
                    if node >= n {
                        continue;
                    }
                    match seen.binary_search(&node) {
                        Ok(_) => continue, // duplicate: first entry already counted
                        Err(pos) => seen.insert(pos, node),
                    }
                    if min.map_or(true, |m| round < m) {
                        min = Some(round);
                    }
                }
                min
            }
            WakeSchedule::Staggered { start, .. } => Some(*start),
        }
    }

    /// Whether `node` is spontaneously awake at `round`.
    pub fn awake(&self, node: usize, round: u64) -> bool {
        self.wake_round(node).is_some_and(|w| w <= round)
    }
}

/// Faults an adversary wants injected at one epoch boundary. The engine
/// translates these into its churn transaction (kills and returns become
/// `ChurnDelta` entries; jammers become a tx-override mask), filtering
/// out requests that don't apply (dead targets, the protected station,
/// duplicates) — plans may therefore be sloppy about current liveness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultDelta {
    /// Stations to crash (tombstone) at this boundary.
    pub kills: Vec<usize>,
    /// Previously crashed stations to bring back **at their retained
    /// position** — the blackout/stale-wake fault: the station returns
    /// with its protocol memory and placement intact but has missed
    /// every round in between.
    pub returns: Vec<usize>,
    /// Stations to jam from this boundary to the next: a jammed station
    /// transmits noise every round (its protocol messages are replaced
    /// by undecodable energy) until the next adversary boundary
    /// re-plans. The SINR math is untouched — jammers are ordinary
    /// transmitters whose payload nobody can use.
    pub jammers: Vec<usize>,
}

impl FaultDelta {
    /// Empties the delta, retaining allocations.
    pub fn clear(&mut self) {
        self.kills.clear();
        self.returns.clear();
        self.jammers.clear();
    }

    /// Whether the delta requests no faults at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.returns.is_empty() && self.jammers.is_empty()
    }
}

/// Read-only view of the run handed to a [`FaultPlan`] at each adversary
/// epoch boundary.
#[derive(Debug)]
pub struct FaultView<'a> {
    /// Adversary epoch counter (0 at the first boundary).
    pub epoch: u64,
    /// Round whose boundary this is (the first round resolved *after*
    /// any injected faults).
    pub round: u64,
    /// Per-station liveness, indexed by station id.
    pub alive: &'a [bool],
    /// The refreshed live communication graph.
    pub graph: &'a CommGraph,
    /// Earliest upcoming protocol phase-transition round at or after
    /// `round`, minimized over live nodes ([`crate::Protocol::phase_hint`]);
    /// `None` when no live node announces one.
    pub next_phase: Option<u64>,
    /// Station the engine will refuse to fault (`usize::MAX` = nobody);
    /// typically the broadcast source, mirroring the churner's
    /// protection.
    pub protected: usize,
}

/// A deterministic fault-injecting adversary, consulted at every
/// adversary epoch boundary.
///
/// Implementations must be pure functions of their construction-time
/// state (seed included) and the [`FaultView`] sequence — no wall clock,
/// no ambient randomness — so that runs stay bitwise identical at any
/// physics thread count. `scratch` is the engine's BFS scratch, lent so
/// graph-analyzing plans (cut vertices, reachability probes) stay
/// allocation-free in steady state.
pub trait FaultPlan: Send {
    /// Fill `faults` with this boundary's faults. `faults` arrives
    /// cleared; leaving it empty injects nothing.
    fn plan(&mut self, view: &FaultView<'_>, faults: &mut FaultDelta, scratch: &mut GraphScratch);
}

/// Crashes stations at the articulation points of the live
/// communication graph — the graph-topology-aware worst case: each kill
/// disconnects (or maximally thins) the remaining population.
///
/// At epoch `at_epoch` the plan kills `floor(fraction · live)` stations:
/// cut vertices first (ascending id), then — because well-connected
/// graphs have few or no cut vertices — it falls back to
/// highest-degree-first (ties to the lowest id) until the quota is met.
/// The protected station is never selected. Fully deterministic: no
/// randomness at all.
#[derive(Debug, Clone)]
pub struct CutVertexAdversary {
    fraction: f64,
    at_epoch: u64,
    cuts: Vec<usize>,
    by_degree: Vec<(usize, usize)>,
}

impl CutVertexAdversary {
    /// Kill `fraction` (clamped to `[0, 1]`) of the live population at
    /// adversary epoch `at_epoch`.
    pub fn new(fraction: f64, at_epoch: u64) -> Self {
        CutVertexAdversary {
            fraction: fraction.clamp(0.0, 1.0),
            at_epoch,
            cuts: Vec::new(),
            by_degree: Vec::new(),
        }
    }
}

impl FaultPlan for CutVertexAdversary {
    fn plan(&mut self, view: &FaultView<'_>, faults: &mut FaultDelta, scratch: &mut GraphScratch) {
        if view.epoch != self.at_epoch {
            return;
        }
        let live = view.graph.num_present();
        let quota = (self.fraction * live as f64).floor() as usize;
        if quota == 0 {
            return;
        }
        view.graph.cut_vertices_into(scratch, &mut self.cuts);
        for &v in self.cuts.iter() {
            if faults.kills.len() >= quota {
                return;
            }
            if v != view.protected {
                faults.kills.push(v);
            }
        }
        // Quota not met by articulation points (e.g. a 2-connected
        // graph): fall back to degree-targeted kills.
        self.by_degree.clear();
        for v in 0..view.graph.len() {
            if view.graph.is_present(v) && v != view.protected && !self.cuts.contains(&v) {
                self.by_degree.push((v, view.graph.degree(v)));
            }
        }
        self.by_degree
            .sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(v, _) in self.by_degree.iter() {
            if faults.kills.len() >= quota {
                return;
            }
            faults.kills.push(v);
        }
    }
}

/// Crashes a burst of random stations at the first adversary boundary
/// **after each protocol phase transition** — the timing-aware
/// adversary: it strikes exactly when the protocols re-align their
/// schedules ([`crate::Protocol::phase_hint`]), maximizing wasted
/// coloring/backoff work.
#[derive(Debug, Clone)]
pub struct PhaseCrashAdversary {
    kills_per_burst: usize,
    every_phases: u64,
    rng: SmallRng,
    /// `phase_hint` observed at the previous boundary; a burst fires
    /// when that hint's round has passed.
    armed_at: Option<u64>,
    phases_seen: u64,
}

impl PhaseCrashAdversary {
    /// Kill `kills_per_burst` random live stations after every
    /// `every_phases`-th observed phase transition (1 = every
    /// transition). `seed` fully determines the victim choices.
    pub fn new(kills_per_burst: usize, every_phases: u64, seed: u64) -> Self {
        PhaseCrashAdversary {
            kills_per_burst,
            every_phases: every_phases.max(1),
            rng: SmallRng::seed_from_u64(seed),
            armed_at: None,
            phases_seen: 0,
        }
    }

    /// Picks `count` distinct live, unprotected victims uniformly via
    /// the plan's own RNG stream (rejection sampling over station ids).
    fn pick_victims(rng: &mut SmallRng, view: &FaultView<'_>, count: usize, out: &mut Vec<usize>) {
        let n = view.alive.len();
        let eligible = view
            .alive
            .iter()
            .enumerate()
            .filter(|&(i, &a)| a && i != view.protected)
            .count();
        let want = count.min(eligible);
        let mut tries = 0usize;
        while out.len() < want && tries < 64 * n.max(1) {
            tries += 1;
            let v = rng.gen_range(0..n);
            if view.alive[v] && v != view.protected && !out.contains(&v) {
                out.push(v);
            }
        }
    }
}

impl FaultPlan for PhaseCrashAdversary {
    fn plan(&mut self, view: &FaultView<'_>, faults: &mut FaultDelta, _scratch: &mut GraphScratch) {
        // A transition passed if the hint armed earlier is now behind us.
        if let Some(at) = self.armed_at {
            if view.round >= at {
                self.phases_seen += 1;
                self.armed_at = None;
                if self.phases_seen % self.every_phases == 0 {
                    Self::pick_victims(
                        &mut self.rng,
                        view,
                        self.kills_per_burst,
                        &mut faults.kills,
                    );
                }
            }
        }
        if self.armed_at.is_none() {
            self.armed_at = view.next_phase;
        }
    }
}

/// Turns random live stations into jammers for one adversary epoch:
/// always-transmit noise sources re-picked (seed-deterministically) at
/// every boundary. Jammed stations keep running their protocol (their
/// RNG streams advance normally) but their transmissions are
/// undecodable noise until the next boundary.
#[derive(Debug, Clone)]
pub struct JamAdversary {
    jammers: usize,
    rng: SmallRng,
}

impl JamAdversary {
    /// Jam `jammers` random live stations per epoch; `seed` fully
    /// determines the choices.
    pub fn new(jammers: usize, seed: u64) -> Self {
        JamAdversary {
            jammers,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl FaultPlan for JamAdversary {
    fn plan(&mut self, view: &FaultView<'_>, faults: &mut FaultDelta, _scratch: &mut GraphScratch) {
        PhaseCrashAdversary::pick_victims(&mut self.rng, view, self.jammers, &mut faults.jammers);
    }
}

/// Temporary outages: at every boundary each live station independently
/// goes dark with the given probability, returning `outage_epochs`
/// boundaries later **at its retained position** with its protocol
/// memory intact — the paper-adjacent "stale wake-up" fault (the
/// returned station's view of the run is `outage_epochs` epochs old).
#[derive(Debug, Clone)]
pub struct BlackoutAdversary {
    fraction: f64,
    outage_epochs: u64,
    rng: SmallRng,
    /// Stations currently dark, with the epoch at which they return.
    down: Vec<(usize, u64)>,
}

impl BlackoutAdversary {
    /// Each live station blacks out with probability `fraction`
    /// (clamped to `[0, 1]`) per boundary, for `outage_epochs`
    /// boundaries (min 1). `seed` fully determines the outage pattern.
    pub fn new(fraction: f64, outage_epochs: u64, seed: u64) -> Self {
        BlackoutAdversary {
            fraction: fraction.clamp(0.0, 1.0),
            outage_epochs: outage_epochs.max(1),
            rng: SmallRng::seed_from_u64(seed),
            down: Vec::new(),
        }
    }
}

impl FaultPlan for BlackoutAdversary {
    fn plan(&mut self, view: &FaultView<'_>, faults: &mut FaultDelta, _scratch: &mut GraphScratch) {
        // Due returns first (ascending id by construction order —
        // stations went down in id order within each epoch).
        self.down.retain(|&(v, due)| {
            if view.epoch >= due {
                faults.returns.push(v);
                false
            } else {
                true
            }
        });
        if self.fraction <= 0.0 {
            return;
        }
        for (v, &a) in view.alive.iter().enumerate() {
            if !a || v == view.protected {
                continue;
            }
            if self.rng.gen_range(0.0..1.0) < self.fraction {
                faults.kills.push(v);
                self.down.push((v, view.epoch + self.outage_epochs));
            }
        }
    }
}

/// Composes several fault plans into one: each boundary, every member
/// plans in order into the same [`FaultDelta`] (the engine deduplicates
/// conflicting requests). This is how "cut-vertex kills **plus**
/// jammers" scenarios are expressed.
pub struct FaultPlanSet(Vec<Box<dyn FaultPlan>>);

impl FaultPlanSet {
    /// An empty composition (injects nothing until plans are added).
    pub fn new() -> Self {
        FaultPlanSet(Vec::new())
    }

    /// Adds a plan; plans run in insertion order.
    pub fn push(&mut self, plan: Box<dyn FaultPlan>) {
        self.0.push(plan);
    }

    /// Number of composed plans.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set has no plans.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for FaultPlanSet {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FaultPlanSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("FaultPlanSet").field(&self.0.len()).finish()
    }
}

impl FaultPlan for FaultPlanSet {
    fn plan(&mut self, view: &FaultView<'_>, faults: &mut FaultDelta, scratch: &mut GraphScratch) {
        for p in &mut self.0 {
            p.plan(view, faults, scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_at() {
        let s = WakeSchedule::AllAt(5);
        assert_eq!(s.wake_round(3), Some(5));
        assert!(!s.awake(3, 4));
        assert!(s.awake(3, 5));
        assert_eq!(s.first_wake(10), Some(5));
    }

    #[test]
    fn selected() {
        let s = WakeSchedule::Selected(vec![(2, 7), (5, 3)]);
        assert_eq!(s.wake_round(2), Some(7));
        assert_eq!(s.wake_round(5), Some(3));
        assert_eq!(s.wake_round(0), None);
        assert_eq!(s.first_wake(6), Some(3));
        assert_eq!(s.first_wake(2), None, "no selected node below index 2");
    }

    #[test]
    fn staggered() {
        let s = WakeSchedule::Staggered { start: 10, gap: 4 };
        assert_eq!(s.wake_round(0), Some(10));
        assert_eq!(s.wake_round(3), Some(22));
        assert_eq!(s.first_wake(4), Some(10));
    }

    #[test]
    fn single_source() {
        let s = WakeSchedule::single(4, 0);
        assert_eq!(s.wake_round(4), Some(0));
        assert_eq!(s.wake_round(0), None);
    }

    #[test]
    fn selected_duplicate_ids_first_entry_wins() {
        // Node 2 appears twice: entry (2, 9) wins over the later (2, 1),
        // for both the per-node query and the minimum.
        let s = WakeSchedule::Selected(vec![(2, 9), (5, 6), (2, 1)]);
        assert_eq!(s.wake_round(2), Some(9));
        assert_eq!(s.first_wake(6), Some(6));
        // With node 5 out of range only the first (2, 9) entry counts.
        assert_eq!(s.first_wake(3), Some(9));
    }

    #[test]
    fn first_wake_edge_cases() {
        assert_eq!(WakeSchedule::AllAt(3).first_wake(0), None);
        assert_eq!(
            WakeSchedule::Staggered { start: 7, gap: 2 }.first_wake(0),
            None
        );
        assert_eq!(
            WakeSchedule::Staggered { start: 7, gap: 2 }.first_wake(5),
            Some(7)
        );
        let s = WakeSchedule::Selected(vec![(10, 1)]);
        assert_eq!(s.first_wake(10), None, "listed node out of range");
        assert_eq!(s.first_wake(11), Some(1));
        assert_eq!(WakeSchedule::Selected(vec![]).first_wake(4), None);
    }

    use sinr_geometry::Point2;
    use sinr_phy::CommGraph;

    fn path_graph(n: usize) -> CommGraph {
        let pts: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64 * 0.4, 0.0)).collect();
        CommGraph::build(&pts, 0.5)
    }

    fn view<'a>(graph: &'a CommGraph, alive: &'a [bool], epoch: u64) -> FaultView<'a> {
        FaultView {
            epoch,
            round: epoch * 10,
            alive,
            graph,
            next_phase: None,
            protected: 0,
        }
    }

    #[test]
    fn cut_vertex_adversary_targets_articulation_points() {
        let g = path_graph(6);
        let alive = vec![true; 6];
        let mut adv = CutVertexAdversary::new(0.5, 1);
        let mut faults = FaultDelta::default();
        let mut scratch = GraphScratch::new();
        adv.plan(&view(&g, &alive, 0), &mut faults, &mut scratch);
        assert!(faults.is_empty(), "not its epoch yet");
        adv.plan(&view(&g, &alive, 1), &mut faults, &mut scratch);
        // floor(0.5 * 6) = 3 kills; path cut vertices are 1..=4, and the
        // protected station 0 is not among them anyway.
        assert_eq!(faults.kills, vec![1, 2, 3, 4][..3].to_vec());
        assert!(!faults.kills.contains(&0));
    }

    #[test]
    fn cut_vertex_adversary_degree_fallback_on_biconnected_graphs() {
        // A 4-clique has no articulation points: the quota must still be
        // met via highest-degree-first (ties to lowest id), skipping the
        // protected station 0.
        let pts: Vec<Point2> = (0..4).map(|i| Point2::new(i as f64 * 0.1, 0.0)).collect();
        let g = CommGraph::build(&pts, 0.5);
        let alive = vec![true; 4];
        let mut adv = CutVertexAdversary::new(0.5, 0);
        let mut faults = FaultDelta::default();
        let mut scratch = GraphScratch::new();
        adv.plan(&view(&g, &alive, 0), &mut faults, &mut scratch);
        assert_eq!(faults.kills, vec![1, 2]);
    }

    #[test]
    fn phase_crash_fires_only_after_a_transition_passes() {
        let g = path_graph(8);
        let alive = vec![true; 8];
        let mut adv = PhaseCrashAdversary::new(2, 1, 77);
        let mut faults = FaultDelta::default();
        let mut scratch = GraphScratch::new();
        // Boundary at round 0 announces a phase transition at round 15.
        let mut v = view(&g, &alive, 0);
        v.round = 0;
        v.next_phase = Some(15);
        adv.plan(&v, &mut faults, &mut scratch);
        assert!(faults.is_empty(), "armed, not fired");
        // Boundary at round 10: transition at 15 not yet passed.
        let mut v = view(&g, &alive, 1);
        v.round = 10;
        v.next_phase = Some(15);
        adv.plan(&v, &mut faults, &mut scratch);
        assert!(faults.is_empty());
        // Boundary at round 20: the transition passed — burst fires.
        let mut v = view(&g, &alive, 2);
        v.round = 20;
        adv.plan(&v, &mut faults, &mut scratch);
        assert_eq!(faults.kills.len(), 2);
        assert!(faults.kills.iter().all(|&k| k != 0 && k < 8));
    }

    #[test]
    fn jam_adversary_is_seed_deterministic() {
        let g = path_graph(10);
        let alive = vec![true; 10];
        let picks = |seed: u64| {
            let mut scratch = GraphScratch::new();
            let mut adv = JamAdversary::new(3, seed);
            let mut faults = FaultDelta::default();
            adv.plan(&view(&g, &alive, 0), &mut faults, &mut scratch);
            faults.jammers
        };
        assert_eq!(picks(5), picks(5));
        assert_eq!(picks(5).len(), 3);
        assert!(!picks(5).contains(&0), "protected never jammed");
    }

    #[test]
    fn blackout_returns_after_outage() {
        let g = path_graph(4);
        let mut alive = vec![true; 4];
        // fraction 1.0: every unprotected live station goes dark.
        let mut adv = BlackoutAdversary::new(1.0, 1, 3);
        let mut faults = FaultDelta::default();
        let mut scratch = GraphScratch::new();
        adv.plan(&view(&g, &alive, 0), &mut faults, &mut scratch);
        assert_eq!(faults.kills, vec![1, 2, 3]);
        assert!(faults.returns.is_empty());
        for &k in &faults.kills {
            alive[k] = false;
        }
        faults.clear();
        adv.plan(&view(&g, &alive, 1), &mut faults, &mut scratch);
        assert_eq!(faults.returns, vec![1, 2, 3], "back after one epoch");
        assert!(faults.kills.is_empty(), "nobody left alive to strike");
    }

    #[test]
    fn plan_set_composes_in_order() {
        let g = path_graph(6);
        let alive = vec![true; 6];
        let mut set = FaultPlanSet::new();
        assert!(set.is_empty());
        set.push(Box::new(CutVertexAdversary::new(0.34, 0)));
        set.push(Box::new(JamAdversary::new(2, 9)));
        assert_eq!(set.len(), 2);
        let mut faults = FaultDelta::default();
        let mut scratch = GraphScratch::new();
        set.plan(&view(&g, &alive, 0), &mut faults, &mut scratch);
        assert_eq!(faults.kills.len(), 2, "floor(0.34 * 6)");
        assert_eq!(faults.jammers.len(), 2);
    }
}
