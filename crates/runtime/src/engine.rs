//! The synchronous round engine.

use rand::rngs::SmallRng;
use sinr_geometry::MetricPoint;
use sinr_phy::{ChurnDelta, GraphScratch, KernelPool, Network, ReceptionOracle, RoundOutcome};

use crate::adversary::{FaultDelta, FaultPlan, FaultView};
use crate::protocol::{NodeCtx, Protocol, TopologyChange};
use crate::rng::node_rng;
use crate::trace::{RoundStats, Trace};

/// Reusable cross-trial scratch: the network-size-independent engine
/// buffers ([`ReceptionOracle`], [`KernelPool`], [`RoundOutcome`],
/// [`GraphScratch`]) that a long-running host — the `sinr-serve` worker
/// pool — keeps warm across jobs instead of reallocating per trial.
///
/// An arena never influences results: every buffer it carries is fully
/// overwritten before it is read (the oracle and outcome resize per
/// round, the graph scratch per traversal), so
/// [`Engine::new_reusing`]-built engines produce reports byte-identical
/// to [`Engine::new`]-built ones. The pool is the big win: recycling it
/// keeps physics worker threads alive across trials
/// ([`Engine::set_physics_threads`] only respawns on a count change).
pub struct EngineArena {
    oracle: ReceptionOracle,
    pool: KernelPool,
    outcome: RoundOutcome,
    graph_scratch: GraphScratch,
}

impl EngineArena {
    /// A cold arena; buffers grow to their high-water marks over the
    /// first trial recycled through it.
    pub fn new() -> Self {
        EngineArena {
            oracle: ReceptionOracle::new(),
            pool: KernelPool::serial(),
            outcome: RoundOutcome::empty(),
            graph_scratch: GraphScratch::new(),
        }
    }
}

impl Default for EngineArena {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of driving an engine until a predicate or a round budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Rounds executed by this call.
    pub rounds: u64,
    /// Whether the predicate was satisfied (vs. the budget exhausting).
    pub completed: bool,
}

/// The boxed epoch mover of a dynamic-topology trial: called with the
/// epoch index and the positions to update.
type Mover<P> = Box<dyn FnMut(u64, &mut [P])>;

/// Epoch-boundary motion hook of a dynamic-topology trial.
struct Mobility<P> {
    /// Rounds per epoch (boundaries fall at round numbers divisible by
    /// this).
    epoch_rounds: u64,
    /// Moves the stations by one epoch; called with the epoch index
    /// (1 at the first boundary) and the positions to update.
    mover: Mover<P>,
}

/// The boxed churn generator of a dynamic-population trial: called with
/// the epoch index, the current liveness flags, and the (cleared, reused)
/// delta to fill.
type Churner<P> = Box<dyn FnMut(u64, &[bool], &mut ChurnDelta<P>)>;

/// Builds the state machine of a station spawned mid-run.
type Spawner<Pr> = Box<dyn FnMut(usize) -> Pr>;

/// Epoch-boundary population hook of a dynamic-population trial.
struct Churn<P, Pr> {
    /// Rounds per churn epoch (boundaries at round numbers divisible by
    /// this; independent of the mobility epoch length).
    epoch_rounds: u64,
    /// Fills the epoch's [`ChurnDelta`].
    churner: Churner<P>,
    /// Constructs the protocol state of spawned stations.
    spawner: Spawner<Pr>,
}

/// Epoch-boundary fault-injection hook ([`Engine::set_adversary`]).
struct Adversary {
    /// Rounds per adversary epoch (boundaries at round numbers divisible
    /// by this; independent of the churn and mobility epoch lengths).
    epoch_rounds: u64,
    /// The fault plan consulted at every boundary.
    plan: Box<dyn FaultPlan>,
    /// Reused per-epoch fault delta.
    delta: FaultDelta,
    /// Station the engine refuses to fault (`usize::MAX` = nobody).
    protected: usize,
}

/// Running totals of injected faults — the raw material of degradation
/// reports ([`Engine::fault_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Stations crashed by the adversary (excluding churner kills).
    pub kills: u64,
    /// Blackout returns injected by the adversary.
    pub returns: u64,
    /// Total jammed transmissions (one per jammer per round jammed).
    pub jam_rounds: u64,
    /// Round of the most recent injected fault, if any — the anchor for
    /// re-convergence ("recovery rounds") accounting.
    pub last_fault_round: Option<u64>,
}

/// Drives a set of per-node [`Protocol`] state machines over a
/// [`Network`], resolving each round through the SINR oracle.
///
/// # Example
///
/// ```
/// use sinr_geometry::Point2;
/// use sinr_phy::{Network, SinrParams};
/// use sinr_runtime::{Engine, NodeCtx, Protocol};
///
/// /// Station 0 transmits once; everyone else listens.
/// struct OneShot { id: usize, heard: bool }
/// impl Protocol for OneShot {
///     type Msg = u8;
///     fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<u8> {
///         (self.id == 0 && ctx.round == 0).then_some(7)
///     }
///     fn on_round_end(&mut self, _: &mut NodeCtx<'_>, _tx: bool, rx: Option<&u8>) {
///         if rx == Some(&7) { self.heard = true; }
///     }
///     fn is_done(&self) -> bool { self.heard || self.id == 0 }
/// }
///
/// let net = Network::new(
///     vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)],
///     SinrParams::default_plane(),
/// ).unwrap();
/// let mut eng = Engine::new(net, 42, |id| OneShot { id, heard: false });
/// let result = eng.run_until_all_done(10);
/// assert!(result.completed);
/// assert_eq!(result.rounds, 1);
/// ```
pub struct Engine<P: MetricPoint, Pr: Protocol> {
    net: Network<P>,
    nodes: Vec<Pr>,
    rngs: Vec<SmallRng>,
    round: u64,
    trace: Trace,
    /// Per-node transmission counts (energy accounting).
    tx_counts: Vec<u64>,
    /// Per-node reception counts.
    rx_counts: Vec<u64>,
    // Reused per-round buffers: the engine resolves thousands of rounds
    // over one network, so all reception scratch lives here and `step`
    // performs no steady-state heap allocations in the physical layer.
    tx_ids: Vec<usize>,
    tx_msgs: Vec<Option<Pr::Msg>>,
    oracle: ReceptionOracle,
    // One kernel pool per trial, reused across rounds: per-round threading
    // cost is only the scoped-thread spawn of the accumulate stage (none
    // at the default one thread).
    pool: KernelPool,
    outcome: RoundOutcome,
    /// Dynamic-topology hook: between epochs the network is frozen, at
    /// epoch boundaries the mover updates positions and the network
    /// reindexes in place.
    mobility: Option<Mobility<P>>,
    /// Dynamic-population hook: at churn epoch boundaries stations leave,
    /// rejoin and spawn ([`Engine::set_churn`]).
    churn: Option<Churn<P, Pr>>,
    /// Fault-injection hook: at adversary epoch boundaries a
    /// [`FaultPlan`] crashes, revives and jams stations
    /// ([`Engine::set_adversary`]).
    adversary: Option<Adversary>,
    /// Per-station jam mask, refreshed at adversary boundaries: jammed
    /// stations transmit undecodable noise every round.
    jammed: Vec<bool>,
    /// Number of `true` entries in `jammed` (skips the per-round mask
    /// reads entirely while nobody is jammed).
    num_jammed: usize,
    /// Running fault totals.
    fault_stats: FaultStats,
    /// Reused per-epoch churn delta (no steady-state allocation while
    /// the delta stays under its high-water mark).
    delta: ChurnDelta<P>,
    /// Reused BFS scratch for the epoch-boundary connectivity checks.
    graph_scratch: GraphScratch,
    /// The seed node RNGs derive from — retained so stations spawned
    /// mid-run get their own deterministic streams.
    seed: u64,
}

impl<P: MetricPoint, Pr: Protocol> Engine<P, Pr> {
    /// Creates an engine; `make_node(id)` builds the state machine of each
    /// station, and per-node RNGs are derived from `seed`.
    pub fn new(net: Network<P>, seed: u64, make_node: impl FnMut(usize) -> Pr) -> Self {
        let oracle = net.new_oracle();
        Self::with_buffers(
            net,
            seed,
            make_node,
            oracle,
            KernelPool::serial(),
            RoundOutcome::empty(),
            GraphScratch::new(),
        )
    }

    /// As [`Engine::new`], but stealing the reusable buffers from
    /// `arena` instead of allocating fresh ones — the per-trial entry
    /// point of long-running hosts. Return them with
    /// [`Engine::recycle_into`] when the trial ends. Results are
    /// byte-identical to [`Engine::new`]: every recycled buffer is
    /// overwritten before first read.
    pub fn new_reusing(
        net: Network<P>,
        seed: u64,
        make_node: impl FnMut(usize) -> Pr,
        arena: &mut EngineArena,
    ) -> Self {
        Self::with_buffers(
            net,
            seed,
            make_node,
            std::mem::replace(&mut arena.oracle, ReceptionOracle::new()),
            std::mem::replace(&mut arena.pool, KernelPool::serial()),
            std::mem::replace(&mut arena.outcome, RoundOutcome::empty()),
            std::mem::take(&mut arena.graph_scratch),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn with_buffers(
        net: Network<P>,
        seed: u64,
        mut make_node: impl FnMut(usize) -> Pr,
        mut oracle: ReceptionOracle,
        pool: KernelPool,
        outcome: RoundOutcome,
        graph_scratch: GraphScratch,
    ) -> Self {
        // A recycled oracle must not leak the previous trial's kernel
        // knobs into this one (the arena's results-neutrality contract).
        oracle.set_dispatch(sinr_phy::KernelDispatch::default());
        oracle.set_accumulation(sinr_phy::Accumulation::default());
        let n = net.len();
        let nodes = (0..n).map(&mut make_node).collect();
        let rngs = (0..n).map(|i| node_rng(seed, i as u64, 0)).collect();
        Engine {
            net,
            nodes,
            rngs,
            round: 0,
            trace: Trace::aggregate_only(),
            tx_counts: vec![0; n],
            rx_counts: vec![0; n],
            tx_ids: Vec::with_capacity(n),
            tx_msgs: Vec::new(),
            oracle,
            pool,
            outcome,
            mobility: None,
            churn: None,
            adversary: None,
            jammed: Vec::new(),
            num_jammed: 0,
            fault_stats: FaultStats::default(),
            delta: ChurnDelta::new(),
            graph_scratch,
            seed,
        }
    }

    /// Makes the topology dynamic: every `epoch_rounds` rounds, `mover`
    /// updates the station positions and the network reindexes **in
    /// place** ([`Network::update_positions`] — allocation-reusing, CSR
    /// slot order preserved), so the reception pipeline stays
    /// zero-allocation between epochs. The oracle re-plans from the
    /// rebuilt index on the next round automatically: its plan stage runs
    /// per round against the network's current grid.
    ///
    /// `mover` receives the epoch index (1 at the first boundary, i.e.
    /// before round `epoch_rounds`) and the positions to move; it must be
    /// deterministic for reproducible runs. The round *schedule* is
    /// unaffected — only where stations sit when rounds resolve.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_rounds` is zero.
    pub fn set_mobility(&mut self, epoch_rounds: u64, mover: impl FnMut(u64, &mut [P]) + 'static) {
        assert!(epoch_rounds > 0, "epoch length must be at least one round");
        self.mobility = Some(Mobility {
            epoch_rounds,
            mover: Box::new(mover),
        });
    }

    /// Makes the **population** dynamic: every `epoch_rounds` rounds
    /// `churner` fills a (reused) [`ChurnDelta`] — stations to kill,
    /// dead stations to rejoin at a new position, new stations to spawn —
    /// and the engine applies it as one transaction:
    ///
    /// 1. [`Protocol::on_leave`] fires on each killed station (its state
    ///    is retained — tombstoned, not dropped — so report vectors stay
    ///    index-stable and a later rejoin revives its memory);
    /// 2. [`Network::apply_churn`] tombstones/revives/appends and rebuilds
    ///    the spatial index and communication graph in place;
    /// 3. spawned stations get state machines from `spawner` and fresh
    ///    per-node RNG streams derived from the run seed (a pure function
    ///    of their index, so churned runs replay bit-for-bit);
    /// 4. [`Protocol::on_join`] fires on every rejoined and spawned
    ///    station, then [`Protocol::on_topology_change`] on every live
    ///    station with the refreshed graph's connectivity.
    ///
    /// Dead stations are excluded from transmit/receive entirely and
    /// their RNG streams do not advance while down. Churn composes with
    /// [`Engine::set_mobility`]: the two epochs fire independently and a
    /// boundary where either fires refreshes the communication graph.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_rounds` is zero.
    pub fn set_churn(
        &mut self,
        epoch_rounds: u64,
        churner: impl FnMut(u64, &[bool], &mut ChurnDelta<P>) + 'static,
        spawner: impl FnMut(usize) -> Pr + 'static,
    ) {
        assert!(epoch_rounds > 0, "epoch length must be at least one round");
        self.churn = Some(Churn {
            epoch_rounds,
            churner: Box::new(churner),
            spawner: Box::new(spawner),
        });
    }

    /// Arms a fault-injecting adversary: every `epoch_rounds` rounds the
    /// [`FaultPlan`] is consulted with a [`FaultView`] of the run
    /// (liveness, the communication graph, the earliest live
    /// [`Protocol::phase_hint`]) and its [`FaultDelta`] is applied:
    ///
    /// * **kills** merge into the boundary's [`ChurnDelta`] (after the
    ///   churner's own kills, deduplicated) and ride the same
    ///   transaction — [`Protocol::on_leave`], tombstoning, graph
    ///   refresh, [`Protocol::on_topology_change`];
    /// * **returns** revive previously crashed stations **at their
    ///   retained positions** (blackout/stale-wake), again as ordinary
    ///   rejoins;
    /// * **jammers** transmit undecodable noise every round until the
    ///   next adversary boundary re-plans the mask. The SINR math is
    ///   untouched: jammers are ordinary transmitters whose payload no
    ///   receiver can use, so a station that decodes a jammer hears
    ///   silence at the protocol level (physical-layer trace receptions
    ///   may therefore exceed protocol receptions under jamming). Jammed
    ///   stations keep running their protocol and their RNG streams
    ///   advance normally.
    ///
    /// Requests targeting dead stations (or live ones, for returns), the
    /// `protected` station (`usize::MAX` = nobody) or duplicates are
    /// filtered out, so plans may be sloppy about current liveness.
    /// Faults compose with [`Engine::set_churn`] and
    /// [`Engine::set_mobility`]; all three epochs fire independently.
    /// Determinism: with a deterministic plan, faulted runs remain a
    /// pure function of the seed and are bitwise identical at any
    /// physics thread count.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_rounds` is zero.
    pub fn set_adversary(&mut self, epoch_rounds: u64, protected: usize, plan: Box<dyn FaultPlan>) {
        assert!(epoch_rounds > 0, "epoch length must be at least one round");
        self.adversary = Some(Adversary {
            epoch_rounds,
            plan,
            delta: FaultDelta::default(),
            protected,
        });
    }

    /// Running totals of adversary-injected faults (all zero when no
    /// adversary is armed).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Shards each round's physics accumulate stage across up to
    /// `threads` scoped worker threads (default 1, i.e. inline).
    ///
    /// Results are **bitwise identical at any thread count** — the
    /// reception pipeline's sharding contract — so this only trades
    /// wall-clock for cores. Worthwhile for large networks (≳10⁴
    /// stations) in the grid-native mode; small rounds are dominated by
    /// the per-round spawn cost.
    pub fn set_physics_threads(&mut self, threads: usize) {
        if threads != self.pool.threads() {
            self.pool = KernelPool::new(threads);
        }
    }

    /// The physics thread count rounds are resolved with.
    pub fn physics_threads(&self) -> usize {
        self.pool.threads()
    }

    /// Sets how mobility/churn epoch boundaries refresh the spatial index
    /// and the communication graph (incremental repair vs full rebuild —
    /// [`Network::set_repair_policy`]). Structures are bit-identical
    /// either way; the policy only selects the work spent.
    pub fn set_repair_policy(&mut self, policy: sinr_geometry::RepairPolicy) {
        self.net.set_repair_policy(policy);
    }

    /// Pins the kernel tier of the batched physics kernels
    /// ([`sinr_phy::ReceptionOracle::set_dispatch`]). `Auto` (the
    /// default) dispatches to the best tier the CPU supports;
    /// `ForceScalar` runs the scalar reference path. Results are
    /// **bit-identical** either way — a speed/differential-testing knob.
    pub fn set_kernel_dispatch(&mut self, dispatch: sinr_phy::KernelDispatch) {
        self.oracle.set_dispatch(dispatch);
    }

    /// The configured kernel dispatch.
    pub fn kernel_dispatch(&self) -> sinr_phy::KernelDispatch {
        self.oracle.dispatch()
    }

    /// Sets the precision of the grid-native interference tail sum
    /// ([`sinr_phy::ReceptionOracle::set_accumulation`]). `F32` changes
    /// low bits of the interference totals; the `Scenario` builder
    /// rejects it whenever bit-exact reporting is requested.
    pub fn set_accumulation(&mut self, accumulation: sinr_phy::Accumulation) {
        self.oracle.set_accumulation(accumulation);
    }

    /// The configured tail accumulation precision.
    pub fn accumulation(&self) -> sinr_phy::Accumulation {
        self.oracle.accumulation()
    }

    /// Per-node transmission counts so far — the standard energy proxy for
    /// duty-cycled radios (transmitting dominates the energy budget).
    pub fn tx_counts(&self) -> &[u64] {
        &self.tx_counts
    }

    /// Per-node reception counts so far.
    pub fn rx_counts(&self) -> &[u64] {
        &self.rx_counts
    }

    /// Enables per-round trace recording (see [`Trace::recording`]).
    pub fn record_rounds(&mut self) {
        self.trace = Trace::recording();
    }

    /// The underlying network.
    pub fn network(&self) -> &Network<P> {
        &self.net
    }

    /// The node state machines.
    pub fn nodes(&self) -> &[Pr] {
        &self.nodes
    }

    /// Mutable access to a node (for injecting external events such as
    /// adversarial wake-ups).
    pub fn node_mut(&mut self, id: usize) -> &mut Pr {
        &mut self.nodes[id]
    }

    /// Current round number (= rounds executed so far).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Accumulated trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Executes one synchronous round; returns its statistics.
    pub fn step(&mut self) -> RoundStats {
        // Epoch boundaries first: stations move/churn *between* rounds,
        // so the round about to resolve already sees the new deployment.
        self.epoch_boundary();
        let n = self.net.len();
        // Static populations skip the per-node liveness loads entirely —
        // the dominant case, and these loops are lean enough (a few
        // hundred ns per round on small protocols) for two extra
        // bounds-checked reads per node to show up in the tracked
        // broadcast benchmarks.
        let all_live = self.net.live_count() == n;
        // Jam mask reads are skipped entirely while nobody is jammed —
        // the mask only matters between adversary boundaries that
        // planned jammers.
        let jam_active = self.num_jammed > 0;
        self.tx_ids.clear();
        self.tx_msgs.clear();
        self.tx_msgs.resize_with(n, || None);

        for id in 0..n {
            if !all_live && !self.net.is_alive(id) {
                continue;
            }
            let mut ctx = NodeCtx {
                id,
                round: self.round,
                n,
                rng: &mut self.rngs[id],
            };
            let msg = self.nodes[id].poll_transmit(&mut ctx);
            if jam_active && self.jammed[id] {
                // Jammers transmit every round; whatever the protocol
                // wanted to say is replaced by undecodable noise
                // (`tx_msgs[id]` stays `None`, so decoding this station
                // yields silence). Polling still ran, so the node's RNG
                // stream advances exactly as unjammed.
                self.tx_ids.push(id);
                self.fault_stats.jam_rounds += 1;
            } else if let Some(msg) = msg {
                self.tx_ids.push(id);
                self.tx_msgs[id] = Some(msg);
            }
        }

        self.net.resolve_with_pool(
            &mut self.oracle,
            &mut self.pool,
            &self.tx_ids,
            &mut self.outcome,
        );
        let receptions = self.outcome.num_receivers();

        for &t in &self.tx_ids {
            self.tx_counts[t] += 1;
        }
        for id in 0..n {
            if !all_live && !self.net.is_alive(id) {
                continue;
            }
            let transmitted = self.tx_msgs[id].is_some() || (jam_active && self.jammed[id]);
            let received =
                self.outcome.decoded_from[id].and_then(|from| self.tx_msgs[from].as_ref());
            if received.is_some() {
                self.rx_counts[id] += 1;
            }
            let mut ctx = NodeCtx {
                id,
                round: self.round,
                n,
                rng: &mut self.rngs[id],
            };
            self.nodes[id].on_round_end(&mut ctx, transmitted, received);
        }

        let stats = RoundStats {
            round: self.round,
            transmitters: self.tx_ids.len(),
            receptions,
        };
        self.trace.record(stats);
        self.round += 1;
        stats
    }

    /// Applies any due epoch boundaries: churn first (the departing
    /// stations get `on_leave` before they vanish, arrivals land before
    /// motion), then adversary faults (merged into the same delta), then
    /// mobility, then — if anything changed — one communication-graph
    /// refresh notification to every live node. All scratch (deltas, BFS
    /// buffers, graph CSR, grid, jam mask) is reused, so boundaries
    /// allocate nothing in steady state while `n` is stable.
    fn epoch_boundary(&mut self) {
        if self.round == 0 {
            return;
        }
        let churn_due = self
            .churn
            .as_ref()
            .is_some_and(|c| self.round % c.epoch_rounds == 0);
        let mobility_due = self
            .mobility
            .as_ref()
            .is_some_and(|m| self.round % m.epoch_rounds == 0);
        let adversary_due = self
            .adversary
            .as_ref()
            .is_some_and(|a| self.round % a.epoch_rounds == 0);
        if !churn_due && !mobility_due && !adversary_due {
            return;
        }
        // Generate the epoch's delta first (the churner never touches the
        // network), so a no-op boundary returns before paying the
        // pre-change connectivity BFS below.
        if churn_due {
            let c = self.churn.as_mut().expect("churn_due checked");
            let epoch = self.round / c.epoch_rounds;
            self.delta.clear();
            (c.churner)(epoch, self.net.alive(), &mut self.delta);
        } else {
            self.delta.clear();
        }
        if adversary_due {
            self.plan_faults();
        }
        if self.delta.is_empty() && !mobility_due {
            // Jam-only (or fault-free) boundary: the population and the
            // graph are untouched, so no topology event fires.
            return;
        }
        // Connectivity of the live graph *before* this boundary's churn
        // and motion (the `was_connected` half of the topology event).
        let was_connected = self
            .net
            .comm_graph()
            .is_connected_with(&mut self.graph_scratch);
        let mut joined = 0usize;
        let mut left = 0usize;
        // The delta may carry churner *and* adversary entries; apply it
        // whenever it is non-empty (adversary kills can exist with no
        // churner armed at all).
        if !self.delta.is_empty() {
            let n = self.net.len();
            // Departures hear about it while still alive.
            for &k in &self.delta.kills {
                let mut ctx = NodeCtx {
                    id: k,
                    round: self.round,
                    n,
                    rng: &mut self.rngs[k],
                };
                self.nodes[k].on_leave(&mut ctx);
            }
            // When mobility fires at the same boundary it rebuilds
            // the graph right after moving — skip the intermediate
            // rebuild the combined boundary would otherwise discard.
            if mobility_due {
                self.net.apply_churn_deferred(&self.delta);
            } else {
                self.net.apply_churn(&self.delta);
            }
            let new_n = self.net.len();
            // Spawned stations only ever come from the churner — fault
            // plans crash and revive, they never mint stations.
            if let Some(c) = self.churn.as_mut() {
                for id in n..new_n {
                    self.nodes.push((c.spawner)(id));
                    self.rngs.push(node_rng(self.seed, id as u64, 0));
                    self.tx_counts.push(0);
                    self.rx_counts.push(0);
                }
            }
            for &(r, _) in &self.delta.rejoins {
                let mut ctx = NodeCtx {
                    id: r,
                    round: self.round,
                    n: new_n,
                    rng: &mut self.rngs[r],
                };
                self.nodes[r].on_join(&mut ctx);
            }
            for id in n..new_n {
                let mut ctx = NodeCtx {
                    id,
                    round: self.round,
                    n: new_n,
                    rng: &mut self.rngs[id],
                };
                self.nodes[id].on_join(&mut ctx);
            }
            joined = self.delta.num_joining();
            left = self.delta.kills.len();
        }
        if mobility_due {
            let m = self.mobility.as_mut().expect("mobility_due checked");
            let epoch = self.round / m.epoch_rounds;
            let mover = &mut m.mover;
            self.net.update_positions(|pts| mover(epoch, pts));
            // The stale-graph footgun fix: plain mobile runs refresh the
            // communication graph too, so connectivity-dependent stop
            // predicates see the current deployment. (Churn boundaries
            // already refreshed inside `apply_churn`.)
            self.net.refresh_comm_graph();
        }
        let connected = self
            .net
            .comm_graph()
            .is_connected_with(&mut self.graph_scratch);
        let change = TopologyChange {
            round: self.round,
            joined,
            left,
            was_connected,
            connected,
        };
        let n = self.net.len();
        for id in 0..n {
            if !self.net.is_alive(id) {
                continue;
            }
            let mut ctx = NodeCtx {
                id,
                round: self.round,
                n,
                rng: &mut self.rngs[id],
            };
            self.nodes[id].on_topology_change(&mut ctx, &change);
        }
        // Stations spawned this boundary start unjammed; keep the mask
        // covering the grown population.
        if self.jammed.len() < n {
            self.jammed.resize(n, false);
        }
    }

    /// Consults the fault plan at an adversary epoch boundary: merges
    /// its kills and returns into the churn delta (deduplicated,
    /// liveness- and protection-filtered) and refreshes the jam mask.
    fn plan_faults(&mut self) {
        let n = self.net.len();
        let Some(adv) = self.adversary.as_mut() else {
            return;
        };
        // Adversary epoch counter: 0 at the first boundary.
        let epoch = self.round / adv.epoch_rounds - 1;
        // The earliest phase transition any live node announces — the
        // signal phase-synchronized crash bursts key on.
        let next_phase = self
            .nodes
            .iter()
            .zip(self.net.alive())
            .filter(|&(_, &a)| a)
            .filter_map(|(nd, _)| nd.phase_hint(self.round))
            .min();
        adv.delta.clear();
        let view = FaultView {
            epoch,
            round: self.round,
            alive: self.net.alive(),
            graph: self.net.comm_graph(),
            next_phase,
            protected: adv.protected,
        };
        adv.plan
            .plan(&view, &mut adv.delta, &mut self.graph_scratch);
        let mut touched = false;
        for &k in &adv.delta.kills {
            if k < n && self.net.is_alive(k) && k != adv.protected && !self.delta.kills.contains(&k)
            {
                self.delta.kills.push(k);
                self.fault_stats.kills += 1;
                touched = true;
            }
        }
        for &r in &adv.delta.returns {
            // A blackout return revives the station where it crashed —
            // its position was retained by the tombstone.
            if r < n && !self.net.is_alive(r) && !self.delta.rejoins.iter().any(|&(i, _)| i == r) {
                self.delta.rejoins.push((r, self.net.position(r)));
                self.fault_stats.returns += 1;
                touched = true;
            }
        }
        self.jammed.clear();
        self.jammed.resize(n, false);
        self.num_jammed = 0;
        for &j in &adv.delta.jammers {
            if j < n
                && self.net.is_alive(j)
                && j != adv.protected
                && !self.jammed[j]
                && !self.delta.kills.contains(&j)
            {
                self.jammed[j] = true;
                self.num_jammed += 1;
                touched = true;
            }
        }
        if touched {
            self.fault_stats.last_fault_round = Some(self.round);
        }
    }

    /// Whether every **live** node reports [`Protocol::is_done`]
    /// (tombstoned stations never block completion).
    pub fn all_live_done(&self) -> bool {
        self.nodes
            .iter()
            .zip(self.net.alive())
            .all(|(nd, &a)| !a || nd.is_done())
    }

    /// Runs until `pred` holds (checked *before* each round, so a
    /// pre-satisfied predicate costs zero rounds) or `max_rounds` elapse.
    pub fn run_until(&mut self, max_rounds: u64, mut pred: impl FnMut(&Self) -> bool) -> RunResult {
        let start = self.round;
        loop {
            if pred(self) {
                return RunResult {
                    rounds: self.round - start,
                    completed: true,
                };
            }
            if self.round - start >= max_rounds {
                return RunResult {
                    rounds: self.round - start,
                    completed: false,
                };
            }
            self.step();
        }
    }

    /// Runs until every **live** node reports [`Protocol::is_done`], up
    /// to `max_rounds` (identical to "every node" on static populations).
    pub fn run_until_all_done(&mut self, max_rounds: u64) -> RunResult {
        self.run_until(max_rounds, Engine::all_live_done)
    }

    /// Runs exactly `rounds` rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Consumes the engine, returning the node state machines (for
    /// post-run inspection of colors, decisions, …).
    pub fn into_nodes(self) -> Vec<Pr> {
        self.nodes
    }

    /// As [`Engine::into_nodes`], additionally handing the warm reusable
    /// buffers back to `arena` for the next trial (the counterpart of
    /// [`Engine::new_reusing`]).
    pub fn recycle_into(self, arena: &mut EngineArena) -> Vec<Pr> {
        arena.oracle = self.oracle;
        arena.pool = self.pool;
        arena.outcome = self.outcome;
        arena.graph_scratch = self.graph_scratch;
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;
    use sinr_phy::SinrParams;

    /// Node 0 transmits every round; others count receptions.
    struct Beacon {
        id: usize,
        heard: u32,
    }

    impl Protocol for Beacon {
        type Msg = u64;

        fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<u64> {
            (self.id == 0).then_some(ctx.round)
        }

        fn on_round_end(&mut self, _ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&u64>) {
            if rx.is_some() {
                self.heard += 1;
            }
        }

        fn is_done(&self) -> bool {
            self.id == 0 || self.heard >= 3
        }
    }

    fn net2() -> Network<Point2> {
        Network::new(
            vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)],
            SinrParams::default_plane(),
        )
        .unwrap()
    }

    #[test]
    fn beacon_heard_every_round() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        let res = eng.run_until_all_done(100);
        assert!(res.completed);
        assert_eq!(res.rounds, 3);
        assert_eq!(eng.trace().total_transmissions(), 3);
        assert_eq!(eng.trace().total_receptions(), 3);
    }

    #[test]
    fn run_until_budget_exhausts() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        let res = eng.run_until(2, |_| false);
        assert!(!res.completed);
        assert_eq!(res.rounds, 2);
        assert_eq!(eng.round(), 2);
    }

    #[test]
    fn pre_satisfied_predicate_costs_nothing() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        let res = eng.run_until(10, |_| true);
        assert!(res.completed);
        assert_eq!(res.rounds, 0);
    }

    #[test]
    fn message_payload_carries_round() {
        struct Check {
            id: usize,
            ok: bool,
        }
        impl Protocol for Check {
            type Msg = u64;
            fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<u64> {
                (self.id == 0).then_some(ctx.round * 10)
            }
            fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&u64>) {
                if let Some(&m) = rx {
                    assert_eq!(m, ctx.round * 10);
                    self.ok = true;
                }
            }
            fn is_done(&self) -> bool {
                self.ok || self.id == 0
            }
        }
        let mut eng = Engine::new(net2(), 1, |id| Check { id, ok: false });
        assert!(eng.run_until_all_done(5).completed);
    }

    #[test]
    fn deterministic_across_reruns() {
        use crate::protocol::bernoulli;
        struct Rnd {
            sent: u32,
        }
        impl Protocol for Rnd {
            type Msg = ();
            fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<()> {
                if bernoulli(ctx.rng, 0.5) {
                    self.sent += 1;
                    Some(())
                } else {
                    None
                }
            }
            fn on_round_end(&mut self, _: &mut NodeCtx<'_>, _: bool, _: Option<&()>) {}
        }
        let run = |seed| {
            let mut eng = Engine::new(net2(), seed, |_| Rnd { sent: 0 });
            eng.run_rounds(50);
            eng.into_nodes().iter().map(|n| n.sent).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn physics_threads_leave_execution_bitwise_identical() {
        use crate::protocol::bernoulli;
        struct Rnd {
            sent: u32,
            heard: u32,
        }
        impl Protocol for Rnd {
            type Msg = ();
            fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<()> {
                if bernoulli(ctx.rng, 0.3) {
                    self.sent += 1;
                    Some(())
                } else {
                    None
                }
            }
            fn on_round_end(&mut self, _: &mut NodeCtx<'_>, _: bool, rx: Option<&()>) {
                if rx.is_some() {
                    self.heard += 1;
                }
            }
        }
        // Many cells so the grid-native shard planner has real ranges.
        let pts: Vec<Point2> = (0..120)
            .map(|i| Point2::new((i % 12) as f64 * 0.8, (i / 12) as f64 * 0.8))
            .collect();
        let run = |threads| {
            let net = Network::new(pts.clone(), SinrParams::default_plane())
                .unwrap()
                .with_interference_mode(sinr_phy::InterferenceMode::grid_native());
            let mut eng = Engine::new(net, 11, |_| Rnd { sent: 0, heard: 0 });
            eng.set_physics_threads(threads);
            assert_eq!(eng.physics_threads(), threads.max(1));
            eng.run_rounds(40);
            eng.into_nodes()
                .iter()
                .map(|n| (n.sent, n.heard))
                .collect::<Vec<_>>()
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn mobility_hook_fires_between_epochs_and_moves_reception() {
        use std::cell::RefCell;
        use std::rc::Rc;
        // Node 0 beacons every round; the mover teleports node 1 out of
        // range on odd epochs and back on even ones, so receptions count
        // exactly the rounds spent near.
        let seen = Rc::new(RefCell::new(Vec::new()));
        let log = Rc::clone(&seen);
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        eng.set_mobility(2, move |epoch, pts: &mut [Point2]| {
            log.borrow_mut().push(epoch);
            pts[1] = if epoch % 2 == 1 {
                Point2::new(50.0, 0.0)
            } else {
                Point2::new(0.5, 0.0)
            };
        });
        eng.run_rounds(8);
        assert_eq!(*seen.borrow(), vec![1, 2, 3], "one call per boundary");
        assert_eq!(
            eng.rx_counts()[1],
            4,
            "near during rounds 0-1 and 4-5, far during 2-3 and 6-7"
        );
        assert_eq!(eng.network().position(1), Point2::new(50.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_epoch_length_rejected() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        eng.set_mobility(0, |_, _: &mut [Point2]| {});
    }

    #[test]
    #[should_panic]
    fn zero_churn_epoch_length_rejected() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        eng.set_churn(
            0,
            |_, _, _: &mut sinr_phy::ChurnDelta<Point2>| {},
            |id| Beacon { id, heard: 0 },
        );
    }

    #[test]
    fn churn_kills_rejoins_and_spawns_through_the_engine() {
        // Node 0 beacons every round. Epoch 1 kills node 1; epoch 2
        // rejoins it next to the source; epoch 3 spawns node 2 in range.
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        eng.set_churn(
            2,
            |epoch, alive, delta: &mut sinr_phy::ChurnDelta<Point2>| match epoch {
                1 => {
                    assert!(alive[1]);
                    delta.kills.push(1);
                }
                2 => {
                    assert!(!alive[1]);
                    delta.rejoins.push((1, Point2::new(0.5, 0.0)));
                }
                3 => delta.spawns.push(Point2::new(0.25, 0.0)),
                _ => {}
            },
            |id| Beacon { id, heard: 0 },
        );
        eng.run_rounds(10);
        // Rounds 0-1: node 1 hears twice. Rounds 2-3: dead, hears
        // nothing, rx stream frozen. Rounds 4-9: alive again, hears 6.
        assert_eq!(eng.rx_counts()[0], 0);
        assert_eq!(eng.rx_counts()[1], 8, "2 before death + 6 after rejoin");
        assert_eq!(eng.network().len(), 3, "one spawn appended");
        assert!(eng.network().is_alive(2));
        assert_eq!(eng.rx_counts()[2], 4, "spawned at round 6, heard 6..10");
        assert_eq!(eng.tx_counts(), &[10, 0, 0], "only the beacon transmits");
        assert_eq!(eng.nodes().len(), 3);
    }

    #[test]
    fn lifecycle_events_are_delivered_in_order() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Log(Arc<Mutex<Vec<String>>>);
        struct Observer {
            id: usize,
            log: Log,
        }
        impl Protocol for Observer {
            type Msg = ();
            fn poll_transmit(&mut self, _: &mut NodeCtx<'_>) -> Option<()> {
                None
            }
            fn on_round_end(&mut self, _: &mut NodeCtx<'_>, _: bool, _: Option<&()>) {}
            fn on_join(&mut self, ctx: &mut NodeCtx<'_>) {
                self.log
                    .0
                    .lock()
                    .unwrap()
                    .push(format!("join:{}@{}", self.id, ctx.round));
            }
            fn on_leave(&mut self, ctx: &mut NodeCtx<'_>) {
                self.log
                    .0
                    .lock()
                    .unwrap()
                    .push(format!("leave:{}@{}", self.id, ctx.round));
            }
            fn on_topology_change(&mut self, _: &mut NodeCtx<'_>, change: &TopologyChange) {
                self.log.0.lock().unwrap().push(format!(
                    "topo:{}@{}:j{}l{}:{}-{}",
                    self.id,
                    change.round,
                    change.joined,
                    change.left,
                    change.was_connected,
                    change.connected
                ));
            }
        }
        let log = Log::default();
        let l = log.clone();
        let mut eng = Engine::new(net2(), 7, move |id| Observer { id, log: l.clone() });
        let l = log.clone();
        eng.set_churn(
            2,
            |epoch, _, delta: &mut sinr_phy::ChurnDelta<Point2>| match epoch {
                1 => delta.kills.push(1),
                2 => delta.rejoins.push((1, Point2::new(0.5, 0.0))),
                _ => {}
            },
            move |id| Observer { id, log: l.clone() },
        );
        eng.run_rounds(6);
        let events = log.0.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                // Round-2 boundary: node 1 leaves; the survivor is told
                // the (still-"connected": one live station) graph changed.
                "leave:1@2",
                "topo:0@2:j0l1:true-true",
                // Round-4 boundary: node 1 rejoins; both live nodes see it.
                "join:1@4",
                "topo:0@4:j1l0:true-true",
                "topo:1@4:j1l0:true-true",
            ],
            "lifecycle order"
        );
    }

    #[test]
    fn dead_stations_do_not_block_run_until_all_done() {
        // Node 1 can never hear 3 beacons while dead — but dead nodes are
        // excluded from the completion predicate.
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        eng.set_churn(
            1,
            |epoch, _, delta: &mut sinr_phy::ChurnDelta<Point2>| {
                if epoch == 1 {
                    delta.kills.push(1);
                }
            },
            |id| Beacon { id, heard: 0 },
        );
        let res = eng.run_until_all_done(100);
        assert!(res.completed);
        assert_eq!(res.rounds, 2, "round 0 + the boundary killing node 1");
        assert!(eng.all_live_done());
    }

    #[test]
    fn per_node_energy_accounting() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        eng.run_rounds(5);
        assert_eq!(eng.tx_counts(), &[5, 0], "only node 0 transmits");
        assert_eq!(eng.rx_counts(), &[0, 5], "only node 1 receives");
        assert_eq!(
            eng.tx_counts().iter().sum::<u64>(),
            eng.trace().total_transmissions()
        );
        assert_eq!(
            eng.rx_counts().iter().sum::<u64>(),
            eng.trace().total_receptions()
        );
    }

    #[test]
    fn trace_recording_via_engine() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        eng.record_rounds();
        eng.run_rounds(4);
        assert_eq!(eng.trace().per_round().unwrap().len(), 4);
    }

    /// A scripted fault plan for engine tests.
    struct Script(Vec<(u64, FaultDelta)>);
    impl crate::adversary::FaultPlan for Script {
        fn plan(
            &mut self,
            view: &FaultView<'_>,
            faults: &mut FaultDelta,
            _scratch: &mut sinr_phy::GraphScratch,
        ) {
            for (epoch, d) in &self.0 {
                if *epoch == view.epoch {
                    faults.kills.extend_from_slice(&d.kills);
                    faults.returns.extend_from_slice(&d.returns);
                    faults.jammers.extend_from_slice(&d.jammers);
                }
            }
        }
    }

    #[test]
    fn adversary_kills_and_returns_without_a_churner() {
        // No churner armed: adversary kills must still flow through the
        // churn transaction. Kill node 1 at the first boundary (round 2),
        // return it at the third (round 6) at its retained position.
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        let kill = FaultDelta {
            kills: vec![1],
            ..FaultDelta::default()
        };
        let ret = FaultDelta {
            returns: vec![1],
            ..FaultDelta::default()
        };
        eng.set_adversary(2, 0, Box::new(Script(vec![(0, kill), (2, ret)])));
        eng.run_rounds(10);
        // Heard during rounds 0-1, dead for 2-5, heard again 6-9.
        assert_eq!(eng.rx_counts()[1], 6);
        assert!(eng.network().is_alive(1));
        assert_eq!(eng.network().position(1), Point2::new(0.5, 0.0));
        assert_eq!(eng.fault_stats().kills, 1);
        assert_eq!(eng.fault_stats().returns, 1);
        assert_eq!(eng.fault_stats().last_fault_round, Some(6));
    }

    #[test]
    fn protected_station_never_faulted() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        let kill = FaultDelta {
            kills: vec![0, 1],
            jammers: vec![0],
            ..FaultDelta::default()
        };
        eng.set_adversary(2, 0, Box::new(Script(vec![(0, kill)])));
        eng.run_rounds(4);
        assert!(eng.network().is_alive(0), "protected source survives");
        assert!(!eng.network().is_alive(1));
        assert_eq!(eng.fault_stats().kills, 1);
        assert_eq!(eng.fault_stats().jam_rounds, 0, "protected never jammed");
    }

    #[test]
    fn jammers_transmit_noise_and_protocols_hear_silence() {
        // Node 0 beacons; jam node 0 for one adversary epoch (rounds
        // 2..4). Node 1 decodes the jammer's energy as silence, so its
        // protocol-level reception count excludes the jammed rounds.
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        let jam = FaultDelta {
            jammers: vec![0],
            ..FaultDelta::default()
        };
        eng.set_adversary(2, usize::MAX, Box::new(Script(vec![(0, jam)])));
        eng.run_rounds(6);
        // Rounds 0-1 decoded; 2-3 jammed (silence); 4-5 decoded again.
        assert_eq!(eng.rx_counts()[1], 4);
        // The jammer transmitted every round (energy accounting sees it).
        assert_eq!(eng.tx_counts()[0], 6);
        assert_eq!(eng.fault_stats().jam_rounds, 2);
        assert_eq!(eng.fault_stats().last_fault_round, Some(2));
    }

    #[test]
    fn faulted_runs_are_deterministic_and_thread_invariant() {
        use crate::protocol::bernoulli;
        struct Rnd {
            sent: u32,
            heard: u32,
        }
        impl Protocol for Rnd {
            type Msg = ();
            fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<()> {
                if bernoulli(ctx.rng, 0.3) {
                    self.sent += 1;
                    Some(())
                } else {
                    None
                }
            }
            fn on_round_end(&mut self, _: &mut NodeCtx<'_>, _: bool, rx: Option<&()>) {
                if rx.is_some() {
                    self.heard += 1;
                }
            }
        }
        let pts: Vec<Point2> = (0..60)
            .map(|i| Point2::new((i % 10) as f64 * 0.4, (i / 10) as f64 * 0.4))
            .collect();
        let run = |threads: usize| {
            let net = Network::new(pts.clone(), SinrParams::default_plane()).unwrap();
            let mut eng = Engine::new(net, 13, |_| Rnd { sent: 0, heard: 0 });
            let mut set = crate::adversary::FaultPlanSet::new();
            set.push(Box::new(crate::adversary::CutVertexAdversary::new(0.2, 1)));
            set.push(Box::new(crate::adversary::JamAdversary::new(3, 99)));
            eng.set_adversary(5, 0, Box::new(set));
            eng.set_physics_threads(threads);
            eng.run_rounds(30);
            let stats = *eng.fault_stats();
            (
                eng.into_nodes()
                    .iter()
                    .map(|n| (n.sent, n.heard))
                    .collect::<Vec<_>>(),
                stats,
            )
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
        assert!(one.1.kills > 0, "the cut-vertex adversary struck");
        assert!(one.1.jam_rounds > 0, "jammers ran");
    }

    #[test]
    fn adversary_composes_with_churn_without_double_kills() {
        // Churner and adversary both kill node 1 at the same boundary:
        // the merge must deduplicate (apply_churn would panic on a
        // double kill).
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        eng.set_churn(
            2,
            |epoch, _, delta: &mut sinr_phy::ChurnDelta<Point2>| {
                if epoch == 1 {
                    delta.kills.push(1);
                }
            },
            |id| Beacon { id, heard: 0 },
        );
        let kill = FaultDelta {
            kills: vec![1],
            ..FaultDelta::default()
        };
        eng.set_adversary(2, 0, Box::new(Script(vec![(0, kill)])));
        eng.run_rounds(4);
        assert!(!eng.network().is_alive(1));
        assert_eq!(eng.fault_stats().kills, 0, "the churner got there first");
    }
}
