//! The synchronous round engine.

use rand::rngs::SmallRng;
use sinr_geometry::MetricPoint;
use sinr_phy::{KernelPool, Network, ReceptionOracle, RoundOutcome};

use crate::protocol::{NodeCtx, Protocol};
use crate::rng::node_rng;
use crate::trace::{RoundStats, Trace};

/// Result of driving an engine until a predicate or a round budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Rounds executed by this call.
    pub rounds: u64,
    /// Whether the predicate was satisfied (vs. the budget exhausting).
    pub completed: bool,
}

/// The boxed epoch mover of a dynamic-topology trial: called with the
/// epoch index and the positions to update.
type Mover<P> = Box<dyn FnMut(u64, &mut [P])>;

/// Epoch-boundary motion hook of a dynamic-topology trial.
struct Mobility<P> {
    /// Rounds per epoch (boundaries fall at round numbers divisible by
    /// this).
    epoch_rounds: u64,
    /// Moves the stations by one epoch; called with the epoch index
    /// (1 at the first boundary) and the positions to update.
    mover: Mover<P>,
}

/// Drives a set of per-node [`Protocol`] state machines over a
/// [`Network`], resolving each round through the SINR oracle.
///
/// # Example
///
/// ```
/// use sinr_geometry::Point2;
/// use sinr_phy::{Network, SinrParams};
/// use sinr_runtime::{Engine, NodeCtx, Protocol};
///
/// /// Station 0 transmits once; everyone else listens.
/// struct OneShot { id: usize, heard: bool }
/// impl Protocol for OneShot {
///     type Msg = u8;
///     fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<u8> {
///         (self.id == 0 && ctx.round == 0).then_some(7)
///     }
///     fn on_round_end(&mut self, _: &mut NodeCtx<'_>, _tx: bool, rx: Option<&u8>) {
///         if rx == Some(&7) { self.heard = true; }
///     }
///     fn is_done(&self) -> bool { self.heard || self.id == 0 }
/// }
///
/// let net = Network::new(
///     vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)],
///     SinrParams::default_plane(),
/// ).unwrap();
/// let mut eng = Engine::new(net, 42, |id| OneShot { id, heard: false });
/// let result = eng.run_until_all_done(10);
/// assert!(result.completed);
/// assert_eq!(result.rounds, 1);
/// ```
pub struct Engine<P: MetricPoint, Pr: Protocol> {
    net: Network<P>,
    nodes: Vec<Pr>,
    rngs: Vec<SmallRng>,
    round: u64,
    trace: Trace,
    /// Per-node transmission counts (energy accounting).
    tx_counts: Vec<u64>,
    /// Per-node reception counts.
    rx_counts: Vec<u64>,
    // Reused per-round buffers: the engine resolves thousands of rounds
    // over one network, so all reception scratch lives here and `step`
    // performs no steady-state heap allocations in the physical layer.
    tx_ids: Vec<usize>,
    tx_msgs: Vec<Option<Pr::Msg>>,
    oracle: ReceptionOracle,
    // One kernel pool per trial, reused across rounds: per-round threading
    // cost is only the scoped-thread spawn of the accumulate stage (none
    // at the default one thread).
    pool: KernelPool,
    outcome: RoundOutcome,
    /// Dynamic-topology hook: between epochs the network is frozen, at
    /// epoch boundaries the mover updates positions and the network
    /// reindexes in place.
    mobility: Option<Mobility<P>>,
}

impl<P: MetricPoint, Pr: Protocol> Engine<P, Pr> {
    /// Creates an engine; `make_node(id)` builds the state machine of each
    /// station, and per-node RNGs are derived from `seed`.
    pub fn new(net: Network<P>, seed: u64, mut make_node: impl FnMut(usize) -> Pr) -> Self {
        let n = net.len();
        let nodes = (0..n).map(&mut make_node).collect();
        let rngs = (0..n).map(|i| node_rng(seed, i as u64, 0)).collect();
        let oracle = net.new_oracle();
        Engine {
            net,
            nodes,
            rngs,
            round: 0,
            trace: Trace::aggregate_only(),
            tx_counts: vec![0; n],
            rx_counts: vec![0; n],
            tx_ids: Vec::with_capacity(n),
            tx_msgs: Vec::new(),
            oracle,
            pool: KernelPool::serial(),
            outcome: RoundOutcome::empty(),
            mobility: None,
        }
    }

    /// Makes the topology dynamic: every `epoch_rounds` rounds, `mover`
    /// updates the station positions and the network reindexes **in
    /// place** ([`Network::update_positions`] — allocation-reusing, CSR
    /// slot order preserved), so the reception pipeline stays
    /// zero-allocation between epochs. The oracle re-plans from the
    /// rebuilt index on the next round automatically: its plan stage runs
    /// per round against the network's current grid.
    ///
    /// `mover` receives the epoch index (1 at the first boundary, i.e.
    /// before round `epoch_rounds`) and the positions to move; it must be
    /// deterministic for reproducible runs. The round *schedule* is
    /// unaffected — only where stations sit when rounds resolve.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_rounds` is zero.
    pub fn set_mobility(&mut self, epoch_rounds: u64, mover: impl FnMut(u64, &mut [P]) + 'static) {
        assert!(epoch_rounds > 0, "epoch length must be at least one round");
        self.mobility = Some(Mobility {
            epoch_rounds,
            mover: Box::new(mover),
        });
    }

    /// Shards each round's physics accumulate stage across up to
    /// `threads` scoped worker threads (default 1, i.e. inline).
    ///
    /// Results are **bitwise identical at any thread count** — the
    /// reception pipeline's sharding contract — so this only trades
    /// wall-clock for cores. Worthwhile for large networks (≳10⁴
    /// stations) in the grid-native mode; small rounds are dominated by
    /// the per-round spawn cost.
    pub fn set_physics_threads(&mut self, threads: usize) {
        if threads != self.pool.threads() {
            self.pool = KernelPool::new(threads);
        }
    }

    /// The physics thread count rounds are resolved with.
    pub fn physics_threads(&self) -> usize {
        self.pool.threads()
    }

    /// Per-node transmission counts so far — the standard energy proxy for
    /// duty-cycled radios (transmitting dominates the energy budget).
    pub fn tx_counts(&self) -> &[u64] {
        &self.tx_counts
    }

    /// Per-node reception counts so far.
    pub fn rx_counts(&self) -> &[u64] {
        &self.rx_counts
    }

    /// Enables per-round trace recording (see [`Trace::recording`]).
    pub fn record_rounds(&mut self) {
        self.trace = Trace::recording();
    }

    /// The underlying network.
    pub fn network(&self) -> &Network<P> {
        &self.net
    }

    /// The node state machines.
    pub fn nodes(&self) -> &[Pr] {
        &self.nodes
    }

    /// Mutable access to a node (for injecting external events such as
    /// adversarial wake-ups).
    pub fn node_mut(&mut self, id: usize) -> &mut Pr {
        &mut self.nodes[id]
    }

    /// Current round number (= rounds executed so far).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Accumulated trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Executes one synchronous round; returns its statistics.
    pub fn step(&mut self) -> RoundStats {
        // Epoch boundary first: stations move *between* rounds, so the
        // round about to resolve already sees the new positions.
        if let Some(m) = self.mobility.as_mut() {
            if self.round > 0 && self.round % m.epoch_rounds == 0 {
                let epoch = self.round / m.epoch_rounds;
                let mover = &mut m.mover;
                self.net.update_positions(|pts| mover(epoch, pts));
            }
        }
        let n = self.net.len();
        self.tx_ids.clear();
        self.tx_msgs.clear();
        self.tx_msgs.resize_with(n, || None);

        for id in 0..n {
            let mut ctx = NodeCtx {
                id,
                round: self.round,
                n,
                rng: &mut self.rngs[id],
            };
            if let Some(msg) = self.nodes[id].poll_transmit(&mut ctx) {
                self.tx_ids.push(id);
                self.tx_msgs[id] = Some(msg);
            }
        }

        self.net.resolve_with_pool(
            &mut self.oracle,
            &mut self.pool,
            &self.tx_ids,
            &mut self.outcome,
        );
        let receptions = self.outcome.num_receivers();

        for &t in &self.tx_ids {
            self.tx_counts[t] += 1;
        }
        for id in 0..n {
            let transmitted = self.tx_msgs[id].is_some();
            let received =
                self.outcome.decoded_from[id].and_then(|from| self.tx_msgs[from].as_ref());
            if received.is_some() {
                self.rx_counts[id] += 1;
            }
            let mut ctx = NodeCtx {
                id,
                round: self.round,
                n,
                rng: &mut self.rngs[id],
            };
            self.nodes[id].on_round_end(&mut ctx, transmitted, received);
        }

        let stats = RoundStats {
            round: self.round,
            transmitters: self.tx_ids.len(),
            receptions,
        };
        self.trace.record(stats);
        self.round += 1;
        stats
    }

    /// Runs until `pred` holds (checked *before* each round, so a
    /// pre-satisfied predicate costs zero rounds) or `max_rounds` elapse.
    pub fn run_until(&mut self, max_rounds: u64, mut pred: impl FnMut(&Self) -> bool) -> RunResult {
        let start = self.round;
        loop {
            if pred(self) {
                return RunResult {
                    rounds: self.round - start,
                    completed: true,
                };
            }
            if self.round - start >= max_rounds {
                return RunResult {
                    rounds: self.round - start,
                    completed: false,
                };
            }
            self.step();
        }
    }

    /// Runs until every node reports [`Protocol::is_done`], up to
    /// `max_rounds`.
    pub fn run_until_all_done(&mut self, max_rounds: u64) -> RunResult {
        self.run_until(max_rounds, |eng| eng.nodes.iter().all(Pr::is_done))
    }

    /// Runs exactly `rounds` rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Consumes the engine, returning the node state machines (for
    /// post-run inspection of colors, decisions, …).
    pub fn into_nodes(self) -> Vec<Pr> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point2;
    use sinr_phy::SinrParams;

    /// Node 0 transmits every round; others count receptions.
    struct Beacon {
        id: usize,
        heard: u32,
    }

    impl Protocol for Beacon {
        type Msg = u64;

        fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<u64> {
            (self.id == 0).then_some(ctx.round)
        }

        fn on_round_end(&mut self, _ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&u64>) {
            if rx.is_some() {
                self.heard += 1;
            }
        }

        fn is_done(&self) -> bool {
            self.id == 0 || self.heard >= 3
        }
    }

    fn net2() -> Network<Point2> {
        Network::new(
            vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0)],
            SinrParams::default_plane(),
        )
        .unwrap()
    }

    #[test]
    fn beacon_heard_every_round() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        let res = eng.run_until_all_done(100);
        assert!(res.completed);
        assert_eq!(res.rounds, 3);
        assert_eq!(eng.trace().total_transmissions(), 3);
        assert_eq!(eng.trace().total_receptions(), 3);
    }

    #[test]
    fn run_until_budget_exhausts() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        let res = eng.run_until(2, |_| false);
        assert!(!res.completed);
        assert_eq!(res.rounds, 2);
        assert_eq!(eng.round(), 2);
    }

    #[test]
    fn pre_satisfied_predicate_costs_nothing() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        let res = eng.run_until(10, |_| true);
        assert!(res.completed);
        assert_eq!(res.rounds, 0);
    }

    #[test]
    fn message_payload_carries_round() {
        struct Check {
            id: usize,
            ok: bool,
        }
        impl Protocol for Check {
            type Msg = u64;
            fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<u64> {
                (self.id == 0).then_some(ctx.round * 10)
            }
            fn on_round_end(&mut self, ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&u64>) {
                if let Some(&m) = rx {
                    assert_eq!(m, ctx.round * 10);
                    self.ok = true;
                }
            }
            fn is_done(&self) -> bool {
                self.ok || self.id == 0
            }
        }
        let mut eng = Engine::new(net2(), 1, |id| Check { id, ok: false });
        assert!(eng.run_until_all_done(5).completed);
    }

    #[test]
    fn deterministic_across_reruns() {
        use crate::protocol::bernoulli;
        struct Rnd {
            sent: u32,
        }
        impl Protocol for Rnd {
            type Msg = ();
            fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<()> {
                if bernoulli(ctx.rng, 0.5) {
                    self.sent += 1;
                    Some(())
                } else {
                    None
                }
            }
            fn on_round_end(&mut self, _: &mut NodeCtx<'_>, _: bool, _: Option<&()>) {}
        }
        let run = |seed| {
            let mut eng = Engine::new(net2(), seed, |_| Rnd { sent: 0 });
            eng.run_rounds(50);
            eng.into_nodes().iter().map(|n| n.sent).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn physics_threads_leave_execution_bitwise_identical() {
        use crate::protocol::bernoulli;
        struct Rnd {
            sent: u32,
            heard: u32,
        }
        impl Protocol for Rnd {
            type Msg = ();
            fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<()> {
                if bernoulli(ctx.rng, 0.3) {
                    self.sent += 1;
                    Some(())
                } else {
                    None
                }
            }
            fn on_round_end(&mut self, _: &mut NodeCtx<'_>, _: bool, rx: Option<&()>) {
                if rx.is_some() {
                    self.heard += 1;
                }
            }
        }
        // Many cells so the grid-native shard planner has real ranges.
        let pts: Vec<Point2> = (0..120)
            .map(|i| Point2::new((i % 12) as f64 * 0.8, (i / 12) as f64 * 0.8))
            .collect();
        let run = |threads| {
            let net = Network::new(pts.clone(), SinrParams::default_plane())
                .unwrap()
                .with_interference_mode(sinr_phy::InterferenceMode::grid_native());
            let mut eng = Engine::new(net, 11, |_| Rnd { sent: 0, heard: 0 });
            eng.set_physics_threads(threads);
            assert_eq!(eng.physics_threads(), threads.max(1));
            eng.run_rounds(40);
            eng.into_nodes()
                .iter()
                .map(|n| (n.sent, n.heard))
                .collect::<Vec<_>>()
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn mobility_hook_fires_between_epochs_and_moves_reception() {
        use std::cell::RefCell;
        use std::rc::Rc;
        // Node 0 beacons every round; the mover teleports node 1 out of
        // range on odd epochs and back on even ones, so receptions count
        // exactly the rounds spent near.
        let seen = Rc::new(RefCell::new(Vec::new()));
        let log = Rc::clone(&seen);
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        eng.set_mobility(2, move |epoch, pts: &mut [Point2]| {
            log.borrow_mut().push(epoch);
            pts[1] = if epoch % 2 == 1 {
                Point2::new(50.0, 0.0)
            } else {
                Point2::new(0.5, 0.0)
            };
        });
        eng.run_rounds(8);
        assert_eq!(*seen.borrow(), vec![1, 2, 3], "one call per boundary");
        assert_eq!(
            eng.rx_counts()[1],
            4,
            "near during rounds 0-1 and 4-5, far during 2-3 and 6-7"
        );
        assert_eq!(eng.network().position(1), Point2::new(50.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_epoch_length_rejected() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        eng.set_mobility(0, |_, _: &mut [Point2]| {});
    }

    #[test]
    fn per_node_energy_accounting() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        eng.run_rounds(5);
        assert_eq!(eng.tx_counts(), &[5, 0], "only node 0 transmits");
        assert_eq!(eng.rx_counts(), &[0, 5], "only node 1 receives");
        assert_eq!(
            eng.tx_counts().iter().sum::<u64>(),
            eng.trace().total_transmissions()
        );
        assert_eq!(
            eng.rx_counts().iter().sum::<u64>(),
            eng.trace().total_receptions()
        );
    }

    #[test]
    fn trace_recording_via_engine() {
        let mut eng = Engine::new(net2(), 7, |id| Beacon { id, heard: 0 });
        eng.record_rounds();
        eng.run_rounds(4);
        assert_eq!(eng.trace().per_round().unwrap().len(), 4);
    }
}
