//! Deterministic per-node randomness.
//!
//! Every simulation is reproducible from a single master seed. Each station
//! gets an independent RNG stream derived by a SplitMix64 hash of
//! `(master_seed, node_id, stream_id)`, so adding or removing nodes never
//! perturbs other nodes' streams and repeated sub-protocols (stream ids) are
//! independent.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives a 64-bit seed from a master seed, a node id and a stream id
/// using SplitMix64 finalisation (a strong 64-bit mixer).
pub fn derive_seed(master: u64, node: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(node.wrapping_add(1)))
        .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A node's RNG for a given master seed and stream.
pub fn node_rng(master: u64, node: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, node, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic() {
        let mut a = node_rng(42, 7, 0);
        let mut b = node_rng(42, 7, 0);
        let xa: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xa, xb);
    }

    #[test]
    fn distinct_nodes_distinct_streams() {
        assert_ne!(derive_seed(42, 0, 0), derive_seed(42, 1, 0));
        assert_ne!(derive_seed(42, 0, 0), derive_seed(42, 0, 1));
        assert_ne!(derive_seed(42, 0, 0), derive_seed(43, 0, 0));
    }

    #[test]
    fn seeds_well_spread() {
        // Crude avalanche check: flipping the node id flips many bits.
        let a = derive_seed(1, 0, 0);
        let b = derive_seed(1, 1, 0);
        let diff = (a ^ b).count_ones();
        assert!(diff >= 16, "only {diff} differing bits");
    }
}
