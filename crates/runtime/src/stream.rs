//! Lossy bounded-channel streaming of round events.
//!
//! The building block of the `sinr-serve` subscriber fan-out: an engine
//! host pushes one [`RoundEvent`] per round into a [`RoundSink`], whose
//! bounded `std::sync::mpsc` channel gives **backpressure without
//! blocking** — when a subscriber's reader falls behind and the channel
//! fills, [`RoundSink::offer`] drops the event and counts it instead of
//! stalling the engine. A slow reader therefore degrades to
//! report-only: the final report always arrives (it travels outside the
//! lossy channel), only intermediate round traces thin out.
//!
//! Dropping events can never affect results: a [`RoundEvent`] is a
//! *view* of a round the engine already resolved, so the determinism
//! contract (reports are pure functions of the seed) is untouched by
//! any pattern of drops.

use std::sync::mpsc::{Receiver, SyncSender, TrySendError};

/// One resolved round, as streamed to subscribers: the per-round trace
/// statistics plus the running coverage count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundEvent {
    /// Seed of the run this round belongs to.
    pub seed: u64,
    /// Round number (1-based, as in [`crate::RoundStats`]).
    pub round: u64,
    /// Number of transmitting stations this round.
    pub transmitters: usize,
    /// Number of stations that decoded a message this round.
    pub receptions: usize,
    /// Stations informed (protocol-defined coverage) after this round.
    pub informed: usize,
}

/// The lossy sending half of a bounded round-event channel.
///
/// `offer` never blocks: a full channel (slow reader) or a hung-up
/// receiver counts the event as dropped and moves on. The host reads
/// [`RoundSink::dropped`] / [`RoundSink::is_degraded`] after the run to
/// tell the subscriber how much of the trace it lost.
#[derive(Debug)]
pub struct RoundSink<T> {
    tx: SyncSender<T>,
    dropped: u64,
}

impl<T> RoundSink<T> {
    /// Wraps an existing bounded sender.
    pub fn new(tx: SyncSender<T>) -> Self {
        RoundSink { tx, dropped: 0 }
    }

    /// Creates a bounded channel of `capacity` events and returns the
    /// lossy sink plus the receiving half.
    pub fn bounded(capacity: usize) -> (Self, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
        (Self::new(tx), rx)
    }

    /// Offers one event: `true` if enqueued, `false` if dropped (channel
    /// full or receiver gone). Never blocks.
    pub fn offer(&mut self, event: T) -> bool {
        match self.tx.try_send(event) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped += 1;
                false
            }
        }
    }

    /// Number of events dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether any event has been dropped (the subscriber's trace is
    /// incomplete; its final report is unaffected).
    pub fn is_degraded(&self) -> bool {
        self.dropped > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offer_is_lossy_not_blocking() {
        let (mut sink, rx) = RoundSink::bounded(2);
        assert!(sink.offer(1u32));
        assert!(sink.offer(2));
        // Channel full: dropped, not blocked.
        assert!(!sink.offer(3));
        assert!(!sink.offer(4));
        assert_eq!(sink.dropped(), 2);
        assert!(sink.is_degraded());
        // Reader catches up; capacity frees.
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(sink.offer(5));
        let rest: Vec<u32> = rx.try_iter().collect();
        assert_eq!(rest, vec![2, 5]);
    }

    #[test]
    fn hung_up_receiver_counts_as_drop() {
        let (mut sink, rx) = RoundSink::bounded(1);
        drop(rx);
        assert!(!sink.offer(7u32));
        assert!(sink.is_degraded());
    }
}
