//! Synchronous round engine for SINR protocol simulation.
//!
//! Protocols from the paper are per-node state machines implementing
//! [`Protocol`]; the [`Engine`] drives them round by round, resolving the
//! channel through the exact SINR oracle of [`sinr_phy`]. Nodes receive no
//! channel feedback beyond decoded messages (no carrier sensing), matching
//! the paper's model.
//!
//! * [`Engine`] — the round loop, with trace collection and termination
//!   predicates;
//! * [`Protocol`] / [`NodeCtx`] — the state-machine interface;
//! * [`node_rng`] / [`derive_seed`] — deterministic per-node randomness;
//! * [`WakeSchedule`] — adversarial spontaneous wake-up schedules;
//! * [`Trace`] / [`RoundStats`] — per-round statistics.
//!
//! See [`Engine`] for a complete usage example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod engine;
pub mod protocol;
pub mod rng;
pub mod stream;
pub mod trace;

pub use adversary::{
    BlackoutAdversary, CutVertexAdversary, FaultDelta, FaultPlan, FaultPlanSet, FaultView,
    JamAdversary, PhaseCrashAdversary, WakeSchedule,
};
pub use engine::{Engine, EngineArena, FaultStats, RunResult};
pub use protocol::{bernoulli, NodeCtx, Protocol, TopologyChange};
pub use rng::{derive_seed, node_rng};
pub use stream::{RoundEvent, RoundSink};
pub use trace::{RoundStats, Trace};
