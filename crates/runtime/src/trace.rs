//! Round-by-round statistics collection.

/// Statistics of a single simulated round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Round number.
    pub round: u64,
    /// Number of transmitting stations.
    pub transmitters: usize,
    /// Number of stations that decoded a message.
    pub receptions: usize,
}

/// Aggregated trace of a simulation run.
///
/// Per-round records are kept only when enabled (they can dominate memory on
/// long runs); totals are always maintained.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    total_transmissions: u64,
    total_receptions: u64,
    rounds: u64,
    busiest_round: Option<RoundStats>,
    per_round: Option<Vec<RoundStats>>,
}

impl Trace {
    /// A trace keeping only aggregate counters.
    pub fn aggregate_only() -> Self {
        Trace::default()
    }

    /// A trace additionally recording every round.
    pub fn recording() -> Self {
        Trace {
            per_round: Some(Vec::new()),
            ..Trace::default()
        }
    }

    /// Records one round's statistics.
    pub fn record(&mut self, stats: RoundStats) {
        self.rounds += 1;
        self.total_transmissions += stats.transmitters as u64;
        self.total_receptions += stats.receptions as u64;
        if self
            .busiest_round
            .map_or(true, |b| stats.transmitters > b.transmitters)
        {
            self.busiest_round = Some(stats);
        }
        if let Some(v) = &mut self.per_round {
            v.push(stats);
        }
    }

    /// Number of recorded rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total station-transmissions across the run (energy proxy).
    pub fn total_transmissions(&self) -> u64 {
        self.total_transmissions
    }

    /// Total successful receptions across the run.
    pub fn total_receptions(&self) -> u64 {
        self.total_receptions
    }

    /// The round with the most transmitters, if any round was recorded.
    pub fn busiest_round(&self) -> Option<RoundStats> {
        self.busiest_round
    }

    /// Per-round records, when recording was enabled.
    pub fn per_round(&self) -> Option<&[RoundStats]> {
        self.per_round.as_deref()
    }

    /// Mean transmitters per round (0 for an empty trace).
    pub fn mean_transmitters(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_transmissions as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let mut t = Trace::aggregate_only();
        t.record(RoundStats {
            round: 0,
            transmitters: 3,
            receptions: 1,
        });
        t.record(RoundStats {
            round: 1,
            transmitters: 5,
            receptions: 2,
        });
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.total_transmissions(), 8);
        assert_eq!(t.total_receptions(), 3);
        assert_eq!(t.busiest_round().unwrap().transmitters, 5);
        assert_eq!(t.mean_transmitters(), 4.0);
        assert!(t.per_round().is_none());
    }

    #[test]
    fn recording_keeps_rounds() {
        let mut t = Trace::recording();
        for r in 0..4 {
            t.record(RoundStats {
                round: r,
                transmitters: 1,
                receptions: 0,
            });
        }
        assert_eq!(t.per_round().unwrap().len(), 4);
        assert_eq!(t.per_round().unwrap()[2].round, 2);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert_eq!(t.rounds(), 0);
        assert_eq!(t.mean_transmitters(), 0.0);
        assert!(t.busiest_round().is_none());
    }
}
