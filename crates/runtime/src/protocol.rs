//! The protocol state-machine abstraction.
//!
//! Algorithms are expressed as per-node state machines driven by the round
//! [`crate::Engine`]. Each synchronous round the engine:
//!
//! 1. calls [`Protocol::poll_transmit`] on every node to collect the
//!    transmitter set `T` and outgoing payloads;
//! 2. resolves SINR reception via the physical layer;
//! 3. calls [`Protocol::on_round_end`] on every node with what (if
//!    anything) it decoded and whether it transmitted.
//!
//! Nodes have no carrier sensing: the *only* channel feedback a node gets is
//! a decoded message or silence, exactly as in the paper's model.

use rand::rngs::SmallRng;

/// Per-node, per-round context handed to protocol callbacks.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// This node's index.
    pub id: usize,
    /// Global round number (0-based), i.e. the global clock. Protocols for
    /// the non-spontaneous model must not rely on it except through message
    /// contents (see the paper's synchronisation discussion); protocols for
    /// the spontaneous model may use it freely.
    pub round: u64,
    /// Number of stations `n` (or the shared estimate ν).
    pub n: usize,
    /// This node's private RNG stream.
    pub rng: &'a mut SmallRng,
}

/// A per-node protocol state machine.
///
/// `Msg` is the message type placed on the channel. A transmission carries
/// one `Msg`; the model allows the broadcast message plus `O(log n)` extra
/// bits, which all implemented protocols respect (their `Msg` types hold a
/// constant number of words).
pub trait Protocol: Send {
    /// Channel message type.
    type Msg: Clone + Send;

    /// Decide whether to transmit this round, and with what payload.
    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<Self::Msg>;

    /// Round completion: `transmitted` tells the node whether it was a
    /// sender this round (it then cannot have received anything);
    /// `received` is the decoded message, if any.
    fn on_round_end(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        transmitted: bool,
        received: Option<&Self::Msg>,
    );

    /// Whether this node has locally completed its task. The engine's
    /// [`crate::Engine::run_until_all_done`] uses this as the global
    /// termination predicate.
    fn is_done(&self) -> bool {
        false
    }
}

/// Blanket helper: transmit with probability `p` (clamped to `[0, 1]`).
///
/// This is the single primitive all the paper's randomized protocols use.
pub fn bernoulli(rng: &mut SmallRng, p: f64) -> bool {
    use rand::Rng;
    let p = p.clamp(0.0, 1.0);
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::node_rng;

    #[test]
    fn bernoulli_extremes() {
        let mut rng = node_rng(1, 2, 3);
        assert!(!bernoulli(&mut rng, 0.0));
        assert!(bernoulli(&mut rng, 1.0));
        assert!(!bernoulli(&mut rng, -0.5));
        assert!(bernoulli(&mut rng, 2.0));
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = node_rng(9, 9, 9);
        let trials = 20_000;
        let hits = (0..trials).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq = {freq}");
    }
}
