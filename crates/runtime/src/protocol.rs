//! The protocol state-machine abstraction.
//!
//! Algorithms are expressed as per-node state machines driven by the round
//! [`crate::Engine`]. Each synchronous round the engine:
//!
//! 1. calls [`Protocol::poll_transmit`] on every node to collect the
//!    transmitter set `T` and outgoing payloads;
//! 2. resolves SINR reception via the physical layer;
//! 3. calls [`Protocol::on_round_end`] on every node with what (if
//!    anything) it decoded and whether it transmitted.
//!
//! Nodes have no carrier sensing: the *only* channel feedback a node gets is
//! a decoded message or silence, exactly as in the paper's model.

use rand::rngs::SmallRng;

/// Per-node, per-round context handed to protocol callbacks.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// This node's index.
    pub id: usize,
    /// Global round number (0-based), i.e. the global clock. Protocols for
    /// the non-spontaneous model must not rely on it except through message
    /// contents (see the paper's synchronisation discussion); protocols for
    /// the spontaneous model may use it freely.
    pub round: u64,
    /// Number of stations `n` (or the shared estimate ν).
    pub n: usize,
    /// This node's private RNG stream.
    pub rng: &'a mut SmallRng,
}

/// What changed at an epoch boundary of a dynamic topology, delivered to
/// every live node through [`Protocol::on_topology_change`] after the
/// engine refreshed the network's communication graph.
///
/// The connectivity flags come from the scratch-reusing
/// `CommGraph::is_connected_with` over the **live** population, so
/// protocols can react to partitions healing (`!was_connected &&
/// connected`) or to stations joining (`joined > 0`) — the re-flooding
/// broadcast re-seeds on exactly these signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyChange {
    /// Round number at whose boundary the change happened (the first
    /// round resolved *after* the change).
    pub round: u64,
    /// Stations that joined or rejoined at this boundary.
    pub joined: usize,
    /// Stations that left (were tombstoned) at this boundary.
    pub left: usize,
    /// Whether the live communication graph was connected before the
    /// epoch's motion/churn.
    pub was_connected: bool,
    /// Whether the refreshed live communication graph is connected now.
    pub connected: bool,
}

impl TopologyChange {
    /// Whether this boundary may have changed **who can reach whom**:
    /// stations joined, a disconnected graph healed, or the graph is (or
    /// was) disconnected at all — while components exist, motion can
    /// splice stations between them without the graph ever becoming
    /// connected, so only a boundary that stays connected with no joins
    /// is guaranteed to leave reachability intact. The signal a
    /// dissemination protocol re-seeds on.
    pub fn may_alter_reachability(&self) -> bool {
        self.joined > 0 || !(self.connected && self.was_connected)
    }
}

/// A per-node protocol state machine.
///
/// `Msg` is the message type placed on the channel. A transmission carries
/// one `Msg`; the model allows the broadcast message plus `O(log n)` extra
/// bits, which all implemented protocols respect (their `Msg` types hold a
/// constant number of words).
///
/// # Lifecycle under dynamic populations
///
/// On static topologies only the three round hooks ever fire. When the
/// engine runs churn (`Engine::set_churn`), nodes additionally receive
/// [`Protocol::on_leave`] when tombstoned, [`Protocol::on_join`] when they
/// (re)enter the network, and — on any epoch boundary that moved or
/// churned stations — [`Protocol::on_topology_change`] with the refreshed
/// communication graph's connectivity. All three default to no-ops, so
/// static protocols need no changes. Dead nodes are excluded from
/// `poll_transmit` / `on_round_end` entirely (their RNG streams do not
/// advance while they are down).
pub trait Protocol: Send {
    /// Channel message type.
    type Msg: Clone + Send;

    /// Decide whether to transmit this round, and with what payload.
    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<Self::Msg>;

    /// Round completion: `transmitted` tells the node whether it was a
    /// sender this round (it then cannot have received anything);
    /// `received` is the decoded message, if any.
    fn on_round_end(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        transmitted: bool,
        received: Option<&Self::Msg>,
    );

    /// Whether this node has locally completed its task. The engine's
    /// [`crate::Engine::run_until_all_done`] uses this as the global
    /// termination predicate (over the **live** nodes).
    fn is_done(&self) -> bool {
        false
    }

    /// The station (re)joined the network: called once when a churned
    /// station rejoins at a new position or a freshly spawned station
    /// enters (also delivered to spawned nodes right after construction,
    /// so join-time state lives in one place). Default: no-op.
    fn on_join(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// The station left the network (crash/tombstone). Its state is
    /// retained — a later [`Protocol::on_join`] may revive it with its
    /// memory intact, modelling a rejoining station. Default: no-op.
    fn on_leave(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// An epoch boundary moved and/or churned the population; the
    /// network's communication graph has been refreshed. Delivered to
    /// every live node. Default: no-op.
    fn on_topology_change(&mut self, _ctx: &mut NodeCtx<'_>, _change: &TopologyChange) {}

    /// The round of this node's next protocol phase transition at or
    /// after `round`, if the protocol has a phase structure and knows
    /// one is coming. Purely informational — the engine surfaces the
    /// minimum over live nodes to fault-injecting adversaries
    /// ([`crate::FaultView::next_phase`]) so phase-synchronized crash
    /// bursts can be expressed; protocols gain nothing by lying.
    /// Default: `None` (no announced phase structure).
    fn phase_hint(&self, _round: u64) -> Option<u64> {
        None
    }
}

/// Boxed protocols forward every hook — `Protocol` is object-safe for a
/// fixed `Msg`, so heterogeneous strategies can share one engine type as
/// `Box<dyn Protocol<Msg = M>>`.
impl<T: Protocol + ?Sized> Protocol for Box<T> {
    type Msg = T::Msg;

    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<Self::Msg> {
        (**self).poll_transmit(ctx)
    }

    fn on_round_end(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        transmitted: bool,
        received: Option<&Self::Msg>,
    ) {
        (**self).on_round_end(ctx, transmitted, received)
    }

    fn is_done(&self) -> bool {
        (**self).is_done()
    }

    fn on_join(&mut self, ctx: &mut NodeCtx<'_>) {
        (**self).on_join(ctx)
    }

    fn on_leave(&mut self, ctx: &mut NodeCtx<'_>) {
        (**self).on_leave(ctx)
    }

    fn on_topology_change(&mut self, ctx: &mut NodeCtx<'_>, change: &TopologyChange) {
        (**self).on_topology_change(ctx, change)
    }

    fn phase_hint(&self, round: u64) -> Option<u64> {
        (**self).phase_hint(round)
    }
}

/// Blanket helper: transmit with probability `p` (clamped to `[0, 1]`).
///
/// This is the single primitive all the paper's randomized protocols use.
pub fn bernoulli(rng: &mut SmallRng, p: f64) -> bool {
    use rand::Rng;
    let p = p.clamp(0.0, 1.0);
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::node_rng;

    #[test]
    fn bernoulli_extremes() {
        let mut rng = node_rng(1, 2, 3);
        assert!(!bernoulli(&mut rng, 0.0));
        assert!(bernoulli(&mut rng, 1.0));
        assert!(!bernoulli(&mut rng, -0.5));
        assert!(bernoulli(&mut rng, 2.0));
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = node_rng(9, 9, 9);
        let trials = 20_000;
        let hits = (0..trials).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq = {freq}");
    }
}
