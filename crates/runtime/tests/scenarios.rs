//! Engine scenario tests: channel semantics observed through protocols.

use sinr_geometry::Point2;
use sinr_phy::{Network, SinrParams};
use sinr_runtime::{Engine, NodeCtx, Protocol, RoundStats};

/// Every station transmits every round; nobody should ever receive.
struct Shouter;

impl Protocol for Shouter {
    type Msg = u8;
    fn poll_transmit(&mut self, _ctx: &mut NodeCtx<'_>) -> Option<u8> {
        Some(1)
    }
    fn on_round_end(&mut self, _ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&u8>) {
        assert!(
            rx.is_none(),
            "a transmitter decoded a message (half-duplex violated)"
        );
    }
}

#[test]
fn all_transmitters_hear_nothing() {
    let pts: Vec<Point2> = (0..6).map(|i| Point2::new(i as f64 * 0.3, 0.0)).collect();
    let net = Network::new(pts, SinrParams::default_plane()).unwrap();
    let mut eng = Engine::new(net, 1, |_| Shouter);
    eng.run_rounds(20);
    assert_eq!(eng.trace().total_receptions(), 0);
    assert_eq!(eng.trace().total_transmissions(), 120);
}

/// Stations 0 and 2 transmit together; station 1 between them never
/// decodes (symmetric jam), station 3 far on the side decodes the closer
/// one.
struct Fixed {
    id: usize,
    decoded: Vec<u8>,
}

impl Protocol for Fixed {
    type Msg = u8;
    fn poll_transmit(&mut self, _ctx: &mut NodeCtx<'_>) -> Option<u8> {
        match self.id {
            0 => Some(10),
            2 => Some(20),
            _ => None,
        }
    }
    fn on_round_end(&mut self, _ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&u8>) {
        if let Some(&m) = rx {
            self.decoded.push(m);
        }
    }
}

#[test]
fn symmetric_jam_and_side_capture() {
    let pts = vec![
        Point2::new(0.0, 0.0), // 0: tx "10"
        Point2::new(0.5, 0.0), // 1: jammed midpoint
        Point2::new(1.0, 0.0), // 2: tx "20"
        Point2::new(1.3, 0.0), // 3: near 2, far from 0
    ];
    let net = Network::new(pts, SinrParams::default_plane()).unwrap();
    let mut eng = Engine::new(net, 3, |id| Fixed {
        id,
        decoded: vec![],
    });
    eng.run_rounds(5);
    let nodes = eng.into_nodes();
    assert!(
        nodes[1].decoded.is_empty(),
        "midpoint decoded despite symmetric jam"
    );
    assert_eq!(nodes[3].decoded, vec![20, 20, 20, 20, 20]);
}

/// A listener that flips to transmitter once it hears something: check the
/// relay pattern emerges and RoundStats counts match.
struct Relay {
    informed: bool,
}

impl Protocol for Relay {
    type Msg = u8;
    fn poll_transmit(&mut self, ctx: &mut NodeCtx<'_>) -> Option<u8> {
        // Node 0 seeds the message in round 0; informed nodes always shout.
        if ctx.id == 0 && ctx.round == 0 {
            return Some(7);
        }
        self.informed.then_some(7)
    }
    fn on_round_end(&mut self, _ctx: &mut NodeCtx<'_>, _tx: bool, rx: Option<&u8>) {
        if rx.is_some() {
            self.informed = true;
        }
    }
    fn is_done(&self) -> bool {
        self.informed
    }
}

#[test]
fn deterministic_relay_chain() {
    // Chain spaced 0.9: each hop reaches exactly the next station (distance
    // 0.9 <= 1) but not the one after (1.8 > 1).
    let pts: Vec<Point2> = (0..5).map(|i| Point2::new(i as f64 * 0.9, 0.0)).collect();
    let net = Network::new(pts, SinrParams::default_plane()).unwrap();
    let mut eng = Engine::new(net, 9, |_| Relay { informed: false });
    // Round 0: 0 -> 1. Round 1: 1 -> 2 (0 silent: not informed by itself!).
    // Actually node 0 only transmits in round 0; node 1 relays onward.
    eng.record_rounds();
    let res = eng.run_until(32, |e| e.nodes().iter().skip(1).all(|n| n.informed));
    assert!(res.completed, "relay stalled");
    // One hop per round once the wave starts; the two-neighbour interference
    // pattern may add rounds, but the wave needs at least 4 rounds.
    assert!(res.rounds >= 4);
    let per_round: &[RoundStats] = eng.trace().per_round().unwrap();
    assert_eq!(per_round[0].transmitters, 1);
    assert_eq!(per_round[0].receptions, 1);
}

/// `node_mut` supports external event injection mid-run.
#[test]
fn node_mut_injection() {
    let pts: Vec<Point2> = (0..3).map(|i| Point2::new(i as f64 * 0.9, 0.0)).collect();
    let net = Network::new(pts, SinrParams::default_plane()).unwrap();
    let mut eng = Engine::new(net, 2, |_| Relay { informed: false });
    eng.node_mut(2).informed = true; // adversary wakes node 2 directly
    assert!(eng.nodes()[2].informed);
    let res = eng.run_until(32, |e| e.nodes().iter().all(|n| n.is_done()));
    assert!(res.completed);
}
