//! Bounded-growth metric spaces for SINR wireless-network simulation.
//!
//! The paper *On the Impact of Geometry on Ad Hoc Communication in Wireless
//! Networks* (Jurdzinski, Kowalski, Rozanski, Stachowiak; PODC 2014) deploys
//! stations into a metric space with the *bounded growth property* of degree
//! γ: every ball `B(v, c·d)` can be covered by `O(c^γ)` balls of radius `d`.
//! Euclidean `R^γ` is the canonical such space, and this crate provides the
//! concrete embeddings used throughout the reproduction:
//!
//! * [`Point1`], [`Point2`], [`Point3`] — points in ℝ¹/ℝ²/ℝ³ implementing the
//!   [`MetricPoint`] trait (growth dimensions γ = 1, 2, 3);
//! * [`GridIndex`] — a uniform-grid spatial index supporting exact ball
//!   (range) queries and nearest-neighbour queries in near-linear time, used
//!   by the physical layer to accelerate interference evaluation;
//! * [`PositionStore`] — split per-axis (SoA) coordinate arrays keyed by the
//!   grid's CSR slot order, backing the batched `distance_sq` kernels the
//!   physical layer autovectorizes over cell member ranges;
//! * [`covering_number`] — the χ(a, b) covering-number estimate from the
//!   paper's preliminaries;
//! * ball mass / counting helpers in [`ball`].
//!
//! # Explicit SIMD
//!
//! The batched kernels dispatch at runtime to explicit `std::arch`
//! implementations — see [`simd`] for the dispatch table (AVX2+FMA on
//! x86_64, NEON on aarch64, scalar elsewhere), the bit-exactness
//! contract (lane ops restricted to correctly-rounded mul/add/sub/
//! div/sqrt/max, scalar-identical remainder handling, so every tier
//! produces **bit-identical** results), and the `SINR_KERNELS=scalar` /
//! [`KernelDispatch`] override hooks. Radius tests go through
//! [`radius_criterion`], a sqrt-free predicate proven bit-equivalent to
//! `distance.sqrt() <= radius`.
//!
//! # Incremental repair
//!
//! Dynamic populations (mobility epochs, churn) historically paid a full
//! `GridIndex::rebuild_from` per epoch — O(n) however little moved.
//! [`GridIndex::repair`] patches the index in time proportional to the
//! delta instead: only the cells that gained or lost members are merged
//! anew, every untouched cell's keys, CSR run, SoA coordinates and
//! centroid are bulk-copied bit-for-bit, and the result is **identical
//! to a fresh build** — same cell order, same slot order, same
//! floating-point sums — so every downstream kernel (batched distances,
//! interference sums, comm-graph rows) is unaffected by which path ran.
//! [`RepairPolicy`] picks the path: the default `Auto` falls back to the
//! full rebuild once a delta touches more than ~5% of the population
//! (measured crossover: repair beats rebuild by 19–58× at ≤1% movers
//! and degenerates to ~1× around 10%, at n = 10⁴…10⁶ — see the
//! `repair/` rows of `BENCH.json`). The equivalence is pinned by
//! differential tests from unit level (`grid::tests::repair_*`) to the
//! workspace batteries (`tests/repair_equivalence.rs`).
//!
//! # Example
//!
//! ```
//! use sinr_geometry::{GridIndex, MetricPoint, Point2};
//!
//! let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.5, 0.0), Point2::new(3.0, 4.0)];
//! let index = GridIndex::build(&pts, 1.0);
//! // All points within distance 1 of the origin:
//! let near: Vec<usize> = index.ball(&pts, Point2::new(0.0, 0.0), 1.0).collect();
//! assert_eq!(near, vec![0, 1]);
//! assert_eq!(pts[0].distance(&pts[2]), 5.0);
//! ```

// `deny` rather than `forbid`: the `simd` module's arch submodules are the
// workspace's only sanctioned `#[allow(unsafe_code)]` sites (sinr-lint pins
// the allowlist to `crates/geometry/src/simd/` and `crates/phy/src/simd/`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ball;
pub mod grid;
pub mod point;
pub mod simd;
pub mod store;

pub use ball::{ball_indices, ball_mass, count_in_ball, covering_number};
pub use grid::{CellKey, GridIndex, RepairPolicy};
pub use point::{MetricPoint, Point1, Point2, Point3};
pub use simd::{auto_tier, hardware_tier, radius_criterion, KernelDispatch, SimdTier};
pub use store::PositionStore;
