//! Points in low-dimensional Euclidean space and the [`MetricPoint`] trait.
//!
//! All station positions in the simulator are values of a type implementing
//! [`MetricPoint`]. The trait deliberately exposes *only* what the SINR model
//! needs: a distance function, the growth dimension γ of the ambient space,
//! and per-axis coordinates (used by the grid index for bucketing).

use std::fmt;

/// A point of a bounded-growth metric space.
///
/// Implementors must guarantee that [`MetricPoint::distance`] is a metric
/// (non-negative, symmetric, zero iff equal, triangle inequality) and that
/// the space has the bounded-growth property of degree
/// [`MetricPoint::GROWTH_DIMENSION`]: every ball of radius `c·d` is covered
/// by `O(c^γ)` balls of radius `d`.
///
/// # Example
///
/// ```
/// use sinr_geometry::{MetricPoint, Point2};
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(3.0, 4.0);
/// assert_eq!(a.distance(&b), 5.0);
/// assert_eq!(Point2::GROWTH_DIMENSION, 2.0);
/// ```
pub trait MetricPoint: Copy + fmt::Debug + PartialEq + Send + Sync + 'static {
    /// Number of coordinate axes (1, 2 or 3 for the provided types).
    const AXES: usize;

    /// Growth dimension γ of the ambient metric space.
    ///
    /// For Euclidean ℝ^d this equals `d`. The SINR path-loss exponent α must
    /// satisfy `α > γ` for interference sums to converge (paper Section 1.1).
    const GROWTH_DIMENSION: f64;

    /// Distance between two points.
    fn distance(&self, other: &Self) -> f64;

    /// The `axis`-th coordinate of the point.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= Self::AXES`.
    fn coord(&self, axis: usize) -> f64;

    /// Builds a point from fixed-width coordinates (the `[f64; 3]` form
    /// the batch kernels and mobility models work in); axes beyond
    /// [`MetricPoint::AXES`] are ignored. Inverse of [`MetricPoint::coords`].
    fn from_coords(coords: [f64; 3]) -> Self;

    /// The point's coordinates in fixed-width form (axes beyond
    /// [`MetricPoint::AXES`] stay `0`) — the shape every batch kernel and
    /// mobility model works in. Inverse of [`MetricPoint::from_coords`].
    fn coords(&self) -> [f64; 3] {
        let mut c = [0.0f64; 3];
        for (axis, slot) in c.iter_mut().enumerate().take(Self::AXES) {
            *slot = self.coord(axis);
        }
        c
    }

    /// Midpoint between `self` and `other` (used by topology generators and
    /// ball-cover heuristics). For Euclidean points this is the coordinate
    /// average.
    fn midpoint(&self, other: &Self) -> Self;

    /// Squared distance; override when it is cheaper than `distance` squared.
    fn distance_sq(&self, other: &Self) -> f64 {
        let d = self.distance(other);
        d * d
    }
}

macro_rules! euclidean_point {
    ($(#[$doc:meta])* $name:ident, $axes:expr, [$($field:ident),+]) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Default)]
        pub struct $name {
            $(
                /// Coordinate along one axis.
                pub $field: f64,
            )+
        }

        impl $name {
            /// Creates a point from its coordinates.
            pub const fn new($($field: f64),+) -> Self {
                Self { $($field),+ }
            }

            /// The origin (all coordinates zero).
            pub const fn origin() -> Self {
                Self { $($field: 0.0),+ }
            }

            /// Euclidean norm of the point viewed as a vector.
            pub fn norm(&self) -> f64 {
                self.distance(&Self::origin())
            }
        }

        impl MetricPoint for $name {
            const AXES: usize = $axes;
            const GROWTH_DIMENSION: f64 = $axes as f64;

            fn distance(&self, other: &Self) -> f64 {
                self.distance_sq(other).sqrt()
            }

            fn distance_sq(&self, other: &Self) -> f64 {
                let mut acc = 0.0;
                $(
                    let d = self.$field - other.$field;
                    acc += d * d;
                )+
                acc
            }

            fn coord(&self, axis: usize) -> f64 {
                let coords = [$(self.$field),+];
                coords[axis]
            }

            fn from_coords(coords: [f64; 3]) -> Self {
                let mut iter = coords.into_iter();
                Self { $($field: iter.next().expect("AXES <= 3")),+ }
            }

            fn midpoint(&self, other: &Self) -> Self {
                Self { $($field: (self.$field + other.$field) / 2.0),+ }
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let coords = [$(self.$field),+];
                write!(f, "(")?;
                for (i, c) in coords.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

euclidean_point!(
    /// A point on the real line (growth dimension γ = 1).
    ///
    /// Line networks are the paper's canonical adversarial construction: the
    /// footnote-2 example places stations at geometrically shrinking gaps,
    /// giving exponential granularity `R_s` while keeping the communication
    /// graph a path.
    Point1, 1, [x]
);

euclidean_point!(
    /// A point in the Euclidean plane (growth dimension γ = 2).
    ///
    /// The default deployment space for all experiments.
    Point2, 2, [x, y]
);

euclidean_point!(
    /// A point in Euclidean 3-space (growth dimension γ = 3).
    Point3, 3, [x, y, z]
);

impl From<f64> for Point1 {
    fn from(x: f64) -> Self {
        Point1::new(x)
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

impl From<(f64, f64, f64)> for Point3 {
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Point3::new(x, y, z)
    }
}

impl Point2 {
    /// Translates the point by the vector `(dx, dy)`.
    pub fn translate(&self, dx: f64, dy: f64) -> Self {
        Point2::new(self.x + dx, self.y + dy)
    }

    /// Point at `angle` radians and distance `radius` from `self`.
    pub fn polar_offset(&self, angle: f64, radius: f64) -> Self {
        Point2::new(self.x + radius * angle.cos(), self.y + radius * angle.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_1d_is_absolute_difference() {
        let a = Point1::new(-2.0);
        let b = Point1::new(3.5);
        assert_eq!(a.distance(&b), 5.5);
        assert_eq!(b.distance(&a), 5.5);
    }

    #[test]
    fn distance_2d_pythagorean() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(4.0, 6.0);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn distance_3d() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(2.0, 3.0, 6.0);
        assert_eq!(a.distance(&b), 7.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point2::new(0.25, -8.0);
        assert_eq!(p.distance(&p), 0.0);
    }

    #[test]
    fn squared_distance_matches() {
        let a = Point2::new(1.0, 1.0);
        let b = Point2::new(2.0, 3.0);
        assert!((a.distance_sq(&b) - a.distance(&b).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn coords_round_trip() {
        let p = Point3::new(1.0, 2.0, 3.0);
        assert_eq!(p.coord(0), 1.0);
        assert_eq!(p.coord(1), 2.0);
        assert_eq!(p.coord(2), 3.0);
    }

    #[test]
    #[should_panic]
    fn coord_out_of_range_panics() {
        let p = Point2::new(0.0, 0.0);
        let _ = p.coord(2);
    }

    #[test]
    fn midpoint_is_average() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.midpoint(&b), Point2::new(1.0, 2.0));
    }

    #[test]
    fn growth_dimension_matches_axes() {
        assert_eq!(Point1::GROWTH_DIMENSION, 1.0);
        assert_eq!(Point2::GROWTH_DIMENSION, 2.0);
        assert_eq!(Point3::GROWTH_DIMENSION, 3.0);
    }

    #[test]
    fn from_coords_inverts_coord() {
        assert_eq!(Point1::from_coords([1.5, 9.0, 9.0]), Point1::new(1.5));
        assert_eq!(Point2::from_coords([1.0, 2.0, 9.0]), Point2::new(1.0, 2.0));
        assert_eq!(
            Point3::from_coords([1.0, 2.0, 3.0]),
            Point3::new(1.0, 2.0, 3.0)
        );
    }

    #[test]
    fn coords_round_trips_with_from_coords() {
        assert_eq!(Point1::new(1.5).coords(), [1.5, 0.0, 0.0]);
        assert_eq!(Point2::new(1.0, 2.0).coords(), [1.0, 2.0, 0.0]);
        let p = Point3::new(1.0, -2.0, 3.0);
        assert_eq!(Point3::from_coords(p.coords()), p);
    }

    #[test]
    fn conversions() {
        assert_eq!(Point1::from(2.0), Point1::new(2.0));
        assert_eq!(Point2::from((1.0, 2.0)), Point2::new(1.0, 2.0));
        assert_eq!(Point3::from((1.0, 2.0, 3.0)), Point3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn polar_offset_distance() {
        let p = Point2::new(1.0, 1.0);
        for k in 0..8 {
            let q = p.polar_offset(k as f64 * std::f64::consts::FRAC_PI_4, 2.5);
            assert!((p.distance(&q) - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn debug_format_is_nonempty_tuple() {
        let p = Point2::new(1.0, 2.0);
        assert_eq!(format!("{p:?}"), "(1, 2)");
        assert_eq!(format!("{p}"), "(1, 2)");
    }
}
