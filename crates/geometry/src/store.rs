//! Structure-of-arrays position storage for batched distance kernels.
//!
//! The scalar hot loops of the physical layer spend most of their time
//! computing `distance_sq` between one query point and the members of a
//! grid cell. Stored as an array of point structs, each member costs a
//! strided load; stored as *split per-axis arrays* the same loop is a
//! handful of contiguous loads, a fused multiply-add per axis and one
//! store — exactly the shape LLVM autovectorizes.
//!
//! [`PositionStore`] holds those split arrays. The canonical instance
//! lives inside [`crate::GridIndex`], keyed by the index's CSR **slot**
//! order (slot `s` holds the coordinates of point `ids[s]`), so a cell's
//! members occupy one contiguous slot range and every batched query walks
//! straight through memory. Secondary instances can be rebuilt per round
//! (see [`PositionStore::clear`] / [`PositionStore::push`]) to hold e.g.
//! the positions of the current transmitter set without allocating in
//! steady state.
//!
//! Bit-compatibility contract: [`PositionStore::distance_sq_batch`]
//! evaluates `dx·dx + dy·dy (+ dz·dz)` with the same association order as
//! [`MetricPoint::distance_sq`], so a batched kernel produces bitwise
//! identical floating-point values to the scalar loop it replaces.

use crate::point::MetricPoint;
use crate::simd::{self, SimdTier};

/// Maximum number of coordinate axes supported (matches [`crate::CellKey`]).
pub const MAX_AXES: usize = 3;

/// Split per-axis coordinate arrays (structure-of-arrays) over a sequence
/// of *slots*.
///
/// # Example
///
/// ```
/// use sinr_geometry::{PositionStore, Point2};
/// let pts = [Point2::new(0.0, 0.0), Point2::new(3.0, 4.0)];
/// let mut store = PositionStore::with_axes(2);
/// for p in &pts {
///     store.push(p);
/// }
/// let mut d2 = [0.0; 2];
/// store.distance_sq_batch(0..2, &[0.0; 3], &mut d2);
/// assert_eq!(d2, [0.0, 25.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PositionStore {
    /// Coordinates along each axis; axes `>= self.axes` stay empty.
    coords: [Vec<f64>; MAX_AXES],
    axes: usize,
}

impl PositionStore {
    /// An empty store over `axes` coordinate axes (1, 2 or 3).
    ///
    /// # Panics
    ///
    /// Panics if `axes` is zero or greater than [`MAX_AXES`].
    pub fn with_axes(axes: usize) -> Self {
        assert!(
            (1..=MAX_AXES).contains(&axes),
            "axes must be in 1..={MAX_AXES}, got {axes}"
        );
        PositionStore {
            coords: Default::default(),
            axes,
        }
    }

    /// A store filled from `points` in slice order (slot `s` = `points[s]`).
    pub fn from_points<P: MetricPoint>(points: &[P]) -> Self {
        let mut store = Self::with_axes(P::AXES);
        store.reserve(points.len());
        for p in points {
            store.push(p);
        }
        store
    }

    /// Number of coordinate axes.
    pub fn axes(&self) -> usize {
        self.axes
    }

    /// Number of stored positions.
    pub fn len(&self) -> usize {
        self.coords[0].len()
    }

    /// Whether the store holds no positions.
    pub fn is_empty(&self) -> bool {
        self.coords[0].is_empty()
    }

    /// Removes all positions, keeping the allocated capacity.
    pub fn clear(&mut self) {
        for axis in &mut self.coords {
            axis.clear();
        }
    }

    /// Clears the store and (re)sets its dimensionality — the reuse entry
    /// point for per-round scratch stores whose point type is only known
    /// at fill time.
    ///
    /// # Panics
    ///
    /// Panics if `axes` is zero or greater than [`MAX_AXES`].
    pub fn reset_axes(&mut self, axes: usize) {
        assert!(
            (1..=MAX_AXES).contains(&axes),
            "axes must be in 1..={MAX_AXES}, got {axes}"
        );
        self.axes = axes;
        self.clear();
    }

    /// Appends the positions in `slots` of `other` (same dimensionality),
    /// preserving their order — a per-axis `memcpy`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the dimensionalities differ.
    pub fn extend_from(&mut self, other: &PositionStore, slots: std::ops::Range<usize>) {
        debug_assert_eq!(self.axes, other.axes, "store dimensionality mismatch");
        for axis in 0..self.axes {
            self.coords[axis].extend_from_slice(&other.coords[axis][slots.clone()]);
        }
    }

    /// Reserves capacity for at least `additional` more positions.
    pub fn reserve(&mut self, additional: usize) {
        for axis in self.coords.iter_mut().take(self.axes) {
            axis.reserve(additional);
        }
    }

    /// Appends one position; its slot is the previous [`PositionStore::len`].
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `P::AXES` differs from the store's axes.
    pub fn push<P: MetricPoint>(&mut self, p: &P) {
        debug_assert_eq!(P::AXES, self.axes, "point dimensionality mismatch");
        for (axis, column) in self.coords.iter_mut().enumerate().take(self.axes) {
            column.push(p.coord(axis));
        }
    }

    /// The `axis`-th coordinate of slot `s`.
    pub fn coord(&self, s: usize, axis: usize) -> f64 {
        self.coords[axis][s]
    }

    /// Overwrites the coordinates of slot `s` with `p`'s — the in-place
    /// patch primitive of [`crate::GridIndex::repair`] for stations that
    /// moved without changing grid cell.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range; in debug builds also if `P::AXES`
    /// differs from the store's axes.
    pub fn set<P: MetricPoint>(&mut self, s: usize, p: &P) {
        debug_assert_eq!(P::AXES, self.axes, "point dimensionality mismatch");
        for (axis, column) in self.coords.iter_mut().enumerate().take(self.axes) {
            column[s] = p.coord(axis);
        }
    }

    /// The coordinates of slot `s`, padded with zeros beyond the store's
    /// axes (the fixed-width form every batch kernel takes its query
    /// point in).
    pub fn coords_of(&self, s: usize) -> [f64; MAX_AXES] {
        let mut out = [0.0; MAX_AXES];
        for (axis, slot) in out.iter_mut().enumerate().take(self.axes) {
            *slot = self.coords[axis][s];
        }
        out
    }

    /// Squared distance from `center` to the single slot `s` (the scalar
    /// companion of [`PositionStore::distance_sq_batch`], same
    /// association order).
    pub fn distance_sq_to(&self, s: usize, center: &[f64; MAX_AXES]) -> f64 {
        let dx = self.coords[0][s] - center[0];
        match self.axes {
            1 => dx * dx,
            2 => {
                let dy = self.coords[1][s] - center[1];
                dx * dx + dy * dy
            }
            _ => {
                let dy = self.coords[1][s] - center[1];
                let dz = self.coords[2][s] - center[2];
                dx * dx + dy * dy + dz * dz
            }
        }
    }

    /// Squared distances from `center` to every slot in `slots`, written
    /// to `out[i]` for the `i`-th slot of the range.
    ///
    /// Evaluates `dx·dx + dy·dy (+ dz·dz)` in axis order — bitwise
    /// identical to [`MetricPoint::distance_sq`] on the same coordinates —
    /// over split arrays, so the loop autovectorizes.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the slot range or the range is out
    /// of bounds.
    pub fn distance_sq_batch(
        &self,
        slots: std::ops::Range<usize>,
        center: &[f64; MAX_AXES],
        out: &mut [f64],
    ) {
        self.distance_sq_batch_with(slots, center, out, simd::auto_tier());
    }

    /// [`PositionStore::distance_sq_batch`] pinned to an explicit kernel
    /// tier — the seam the reception oracle uses to honor a run's
    /// [`crate::KernelDispatch`]. Every tier produces bit-identical
    /// output (see [`crate::simd`]).
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the slot range or the range is out
    /// of bounds.
    pub fn distance_sq_batch_with(
        &self,
        slots: std::ops::Range<usize>,
        center: &[f64; MAX_AXES],
        out: &mut [f64],
        tier: SimdTier,
    ) {
        let len = slots.len();
        let out = &mut out[..len];
        let xs = &self.coords[0][slots.clone()];
        let cx = center[0];
        match self.axes {
            1 => simd::distance_sq_1(xs, cx, out, tier),
            2 => {
                let ys = &self.coords[1][slots];
                simd::distance_sq_2(xs, ys, cx, center[1], out, tier);
            }
            _ => {
                let ys = &self.coords[1][slots.clone()];
                let zs = &self.coords[2][slots];
                simd::distance_sq_3(xs, ys, zs, cx, center[1], center[2], out, tier);
            }
        }
    }

    /// Calls `f(slot)` for every slot in `slots` whose point lies within
    /// `radius` of `center`, in ascending slot order, without allocating.
    ///
    /// The membership test is `distance_sq.sqrt() <= radius` — bitwise the
    /// same decision as the scalar `p.distance(center) <= radius` it
    /// replaces.
    pub fn for_each_within(
        &self,
        slots: std::ops::Range<usize>,
        center: &[f64; MAX_AXES],
        radius: f64,
        mut f: impl FnMut(usize),
    ) {
        const CHUNK: usize = 64;
        let mut d2 = [0.0f64; CHUNK];
        let mut start = slots.start;
        while start < slots.end {
            let len = CHUNK.min(slots.end - start);
            self.distance_sq_batch(start..start + len, center, &mut d2[..len]);
            for (k, &v) in d2[..len].iter().enumerate() {
                if v.sqrt() <= radius {
                    f(start + k);
                }
            }
            start += len;
        }
    }

    /// Sqrt-free variant of [`PositionStore::for_each_within`]: calls
    /// `f(slot)` for every slot whose squared distance to `center` is
    /// `<= criterion`, in ascending slot order.
    ///
    /// With `criterion = `[`crate::radius_criterion`]`(radius)` the
    /// decisions are **bitwise identical** to
    /// `distance_sq.sqrt() <= radius` at every slot (see that function's
    /// monotonicity proof; the boundary is pinned exhaustively in
    /// `tests/simd_equivalence.rs`), while skipping the per-candidate
    /// `sqrt` — the one comparison per element then vectorizes on the
    /// dispatched tier. [`crate::GridIndex`] ball queries compute the
    /// criterion once per query and use this path per cell range.
    pub fn for_each_within_sq(
        &self,
        slots: std::ops::Range<usize>,
        center: &[f64; MAX_AXES],
        criterion: f64,
        f: impl FnMut(usize),
    ) {
        self.for_each_within_sq_with(slots, center, criterion, simd::auto_tier(), f)
    }

    /// [`PositionStore::for_each_within_sq`] pinned to an explicit kernel
    /// tier.
    pub fn for_each_within_sq_with(
        &self,
        slots: std::ops::Range<usize>,
        center: &[f64; MAX_AXES],
        criterion: f64,
        tier: SimdTier,
        mut f: impl FnMut(usize),
    ) {
        const CHUNK: usize = 64;
        let mut d2 = [0.0f64; CHUNK];
        let mut start = slots.start;
        while start < slots.end {
            let len = CHUNK.min(slots.end - start);
            self.distance_sq_batch_with(start..start + len, center, &mut d2[..len], tier);
            let mut mask = simd::le_mask(&d2[..len], criterion, tier);
            // Iterating set bits low-to-high preserves ascending slot order.
            while mask != 0 {
                let k = mask.trailing_zeros() as usize;
                f(start + k);
                mask &= mask - 1;
            }
            start += len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{Point1, Point2, Point3};

    #[test]
    fn push_and_query_round_trip() {
        let pts = [Point2::new(1.0, 2.0), Point2::new(-3.0, 0.5)];
        let store = PositionStore::from_points(&pts);
        assert_eq!(store.len(), 2);
        assert_eq!(store.axes(), 2);
        assert!(!store.is_empty());
        assert_eq!(store.coord(1, 0), -3.0);
        assert_eq!(store.coords_of(0), [1.0, 2.0, 0.0]);
    }

    #[test]
    fn batch_matches_scalar_bitwise_all_dims() {
        let p1: Vec<Point1> = (0..33)
            .map(|i| Point1::new(i as f64 * 0.37 - 3.0))
            .collect();
        let center1 = Point1::new(0.21);
        let store = PositionStore::from_points(&p1);
        let mut d2 = vec![0.0; p1.len()];
        store.distance_sq_batch(0..p1.len(), &[center1.x, 0.0, 0.0], &mut d2);
        for (i, p) in p1.iter().enumerate() {
            assert_eq!(d2[i].to_bits(), p.distance_sq(&center1).to_bits());
        }

        let p2: Vec<Point2> = (0..70)
            .map(|i| Point2::new((i as f64 * 0.41).sin() * 5.0, (i as f64 * 0.59).cos() * 5.0))
            .collect();
        let center2 = Point2::new(0.3, -0.7);
        let store = PositionStore::from_points(&p2);
        let mut d2 = vec![0.0; p2.len()];
        store.distance_sq_batch(0..p2.len(), &[center2.x, center2.y, 0.0], &mut d2);
        for (i, p) in p2.iter().enumerate() {
            assert_eq!(d2[i].to_bits(), p.distance_sq(&center2).to_bits());
        }

        let p3: Vec<Point3> = (0..20)
            .map(|i| Point3::new(i as f64 * 0.3, i as f64 * -0.2, 1.0 / (i + 1) as f64))
            .collect();
        let center3 = Point3::new(1.0, 2.0, 3.0);
        let store = PositionStore::from_points(&p3);
        let mut d2 = vec![0.0; p3.len()];
        store.distance_sq_batch(0..p3.len(), &[center3.x, center3.y, center3.z], &mut d2);
        for (i, p) in p3.iter().enumerate() {
            assert_eq!(d2[i].to_bits(), p.distance_sq(&center3).to_bits());
        }
    }

    #[test]
    fn subrange_batch_offsets_output() {
        let pts: Vec<Point2> = (0..10).map(|i| Point2::new(i as f64, 0.0)).collect();
        let store = PositionStore::from_points(&pts);
        let mut d2 = [0.0; 3];
        store.distance_sq_batch(4..7, &[0.0; 3], &mut d2);
        assert_eq!(d2, [16.0, 25.0, 36.0]);
    }

    #[test]
    fn for_each_within_matches_scalar_filter() {
        let pts: Vec<Point2> = (0..150)
            .map(|i| Point2::new((i as f64 * 0.7).sin() * 4.0, (i as f64 * 0.3).cos() * 4.0))
            .collect();
        let store = PositionStore::from_points(&pts);
        let center = Point2::new(0.5, -0.25);
        for radius in [0.0, 0.8, 2.5, 50.0] {
            let mut got = Vec::new();
            store.for_each_within(0..pts.len(), &[center.x, center.y, 0.0], radius, |s| {
                got.push(s)
            });
            let want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.distance(&center) <= radius)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want, "radius {radius}");
        }
    }

    #[test]
    fn for_each_within_sq_matches_sqrt_predicate() {
        let pts: Vec<Point2> = (0..150)
            .map(|i| Point2::new((i as f64 * 0.7).sin() * 4.0, (i as f64 * 0.3).cos() * 4.0))
            .collect();
        let store = PositionStore::from_points(&pts);
        let center = [0.5, -0.25, 0.0];
        for radius in [0.0, 0.8, 2.5, 50.0] {
            let mut want = Vec::new();
            store.for_each_within(0..pts.len(), &center, radius, |s| want.push(s));
            let mut got = Vec::new();
            let crit = crate::simd::radius_criterion(radius);
            store.for_each_within_sq(0..pts.len(), &center, crit, |s| got.push(s));
            assert_eq!(got, want, "radius {radius}");
        }
    }

    #[test]
    fn extend_from_copies_subrange_in_order() {
        let pts: Vec<Point2> = (0..8).map(|i| Point2::new(i as f64, -(i as f64))).collect();
        let src = PositionStore::from_points(&pts);
        let mut dst = PositionStore::with_axes(2);
        dst.extend_from(&src, 2..5);
        dst.extend_from(&src, 0..1);
        assert_eq!(dst.len(), 4);
        assert_eq!(dst.coords_of(0), [2.0, -2.0, 0.0]);
        assert_eq!(dst.coords_of(2), [4.0, -4.0, 0.0]);
        assert_eq!(dst.coords_of(3), [0.0, 0.0, 0.0]);
        dst.reset_axes(2);
        assert!(dst.is_empty());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut store = PositionStore::from_points(&[Point2::new(1.0, 1.0)]);
        store.clear();
        assert!(store.is_empty());
        store.push(&Point2::new(2.0, 2.0));
        assert_eq!(store.coord(0, 0), 2.0);
    }

    #[test]
    #[should_panic]
    fn zero_axes_rejected() {
        let _ = PositionStore::with_axes(0);
    }
}
