//! Uniform-grid spatial index for exact ball and nearest-neighbour queries.
//!
//! The physical layer evaluates interference sums and builds communication
//! graphs with many "all points within distance r of v" queries; a uniform
//! grid with cell side chosen close to the query radius answers each query in
//! time proportional to the output size for bounded-growth inputs.
//!
//! The index is stored *flat*: populated cells are kept in one sorted vector
//! with CSR-style offsets into a single member array, so (a) every iteration
//! order is deterministic (lexicographic in the cell key — no hash-map
//! ordering anywhere), (b) lookups are cache-friendly binary searches, and
//! (c) queries can run through the allocation-free
//! [`GridIndex::for_each_in_ball`] visitor, which the reception oracle uses
//! on its zero-allocation hot path.

use crate::point::MetricPoint;
use crate::store::PositionStore;

/// Key of a grid cell: integer coordinates along up to three axes (unused
/// trailing axes stay `0`).
pub type CellKey = [i64; 3];

/// How the spatial structures react to a population delta at an epoch
/// boundary ([`GridIndex::repair_with_policy`] and the communication
/// graph's repair path built on it).
///
/// Whatever the policy, the resulting structure is **bit-identical** to a
/// from-scratch build of the same population — the policy only selects
/// how much work is spent getting there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepairPolicy {
    /// Patch incrementally while the fraction of stations that changed
    /// cell membership (or liveness) stays at or below `threshold` of the
    /// indexed population; fall back to a full in-place rebuild beyond it
    /// (dense churn amortizes better through one sort than many splices).
    Auto {
        /// Maximum dirty fraction repaired incrementally.
        threshold: f64,
    },
    /// Always rebuild from scratch — the pre-repair behavior, kept as the
    /// differential-test reference.
    AlwaysFull,
    /// Always patch incrementally, however dense the churn — forces the
    /// repair path so differential tests can exercise it.
    AlwaysIncremental,
}

impl Default for RepairPolicy {
    /// Incremental below 5% churn, full rebuild above.
    fn default() -> Self {
        RepairPolicy::Auto { threshold: 0.05 }
    }
}

/// Reusable buffers of the incremental repair path: classification lists
/// plus the double-buffered CSR arrays the merge sweep writes into. Grown
/// once to their high-water marks, then recycled — steady-state repairs
/// perform no heap allocations.
#[derive(Debug, Clone, Default)]
struct RepairScratch {
    /// Deduplicated dirty-station candidates.
    moved: Vec<usize>,
    /// Slots leaving their cell (kills + cross-cell movers), ascending.
    removals: Vec<usize>,
    /// `(new cell key, id)` entering a cell (rejoins, spawns, cross-cell
    /// movers), in fresh-build sort order.
    inserts: Vec<(CellKey, usize)>,
    /// Old cell indices whose members moved within the cell (coordinates
    /// patched in place; centroid needs recomputing).
    touched: Vec<usize>,
    /// Double buffers the merge sweep emits into, swapped with the live
    /// arrays afterwards so edge storage is reused, never reallocated.
    keys_alt: Vec<CellKey>,
    starts_alt: Vec<usize>,
    ids_alt: Vec<usize>,
    store_alt: PositionStore,
    centroids_alt: Vec<[f64; 3]>,
}

/// A uniform-grid spatial index over a fixed slice of points.
///
/// The index stores point *indices*; queries take the backing slice again so
/// the index never borrows the points and can be kept alongside them.
///
/// # Example
///
/// ```
/// use sinr_geometry::{GridIndex, Point2};
/// let pts = vec![Point2::new(0.0, 0.0), Point2::new(2.0, 0.0)];
/// let idx = GridIndex::build(&pts, 1.0);
/// assert_eq!(idx.ball(&pts, Point2::new(0.1, 0.0), 0.5).collect::<Vec<_>>(), vec![0]);
/// assert_eq!(idx.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    /// Keys of the populated cells, sorted lexicographically.
    keys: Vec<CellKey>,
    /// CSR offsets: cell `c` owns `ids[starts[c]..starts[c + 1]]`.
    starts: Vec<usize>,
    /// Point indices grouped by cell, ascending within each cell.
    ids: Vec<usize>,
    /// Point coordinates in **slot order** (slot `s` holds `ids[s]`'s
    /// coordinates), so cell members occupy contiguous SoA ranges.
    store: PositionStore,
    /// Member centroid of each populated cell (trailing axes stay 0);
    /// the tail evaluation points of the grid-native reception kernel.
    centroids: Vec<[f64; 3]>,
    /// `(cell key, point index)` sort scratch, reused by the epoch
    /// reindex path ([`GridIndex::rebuild_from`]).
    pair_scratch: Vec<(CellKey, usize)>,
    /// Slot of each point id (`usize::MAX` when the id is not indexed —
    /// dead or out of range) — the reverse lookup the repair path uses to
    /// find a moved station's previous cell and coordinates.
    slot_of: Vec<usize>,
    /// Buffers of the incremental repair path ([`GridIndex::repair`]).
    repair: RepairScratch,
    cell_side: f64,
    axes: usize,
    /// Number of **indexed** points (= live points under a liveness mask).
    len: usize,
    /// Length of the backing point slice the index was (re)built over —
    /// equals `len` for unmasked builds, and may exceed it when a
    /// liveness mask tombstones part of the population
    /// ([`GridIndex::rebuild_from_masked`]).
    domain: usize,
}

/// Two indexes are equal when they index the same points into the same
/// structure (the sort and repair scratch and the derivable reverse slot
/// map, rebuild implementation details, do not participate) — what the
/// epoch-reindex differential tests compare.
impl PartialEq for GridIndex {
    fn eq(&self, other: &Self) -> bool {
        self.keys == other.keys
            && self.starts == other.starts
            && self.ids == other.ids
            && self.store == other.store
            && self.centroids == other.centroids
            && self.cell_side == other.cell_side
            && self.axes == other.axes
            && self.len == other.len
            && self.domain == other.domain
    }
}

impl GridIndex {
    /// Builds an index over `points` with the given grid cell side.
    ///
    /// `cell_side` should be of the same order as the typical query radius;
    /// the communication range 1 is a good default for SINR networks.
    ///
    /// # Panics
    ///
    /// Panics if `cell_side` is not strictly positive and finite.
    pub fn build<P: MetricPoint>(points: &[P], cell_side: f64) -> Self {
        Self::build_inner(points, None, cell_side)
    }

    /// Builds an index over the **live** subset of `points`: point `i` is
    /// indexed iff `alive[i]` — the from-scratch companion of
    /// [`GridIndex::rebuild_from_masked`] for dynamic populations.
    ///
    /// Dead points keep their indices (queries still report original
    /// indices) but occupy no cell, no slot and no SoA storage, so ball
    /// queries and the batched kernels never see them.
    ///
    /// # Panics
    ///
    /// As [`GridIndex::build`]; additionally panics when `alive` and
    /// `points` differ in length.
    pub fn build_masked<P: MetricPoint>(points: &[P], alive: &[bool], cell_side: f64) -> Self {
        Self::build_inner(points, Some(alive), cell_side)
    }

    fn build_inner<P: MetricPoint>(points: &[P], alive: Option<&[bool]>, cell_side: f64) -> Self {
        assert!(
            cell_side.is_finite() && cell_side > 0.0,
            "grid cell side must be positive and finite, got {cell_side}"
        );
        let mut index = GridIndex {
            keys: Vec::new(),
            starts: Vec::new(),
            ids: Vec::new(),
            store: PositionStore::with_axes(P::AXES),
            centroids: Vec::new(),
            pair_scratch: Vec::new(),
            slot_of: Vec::new(),
            repair: RepairScratch::default(),
            cell_side,
            axes: P::AXES,
            len: 0,
            domain: 0,
        };
        index.fill(points, alive);
        // Static indexes never rebuild: drop the sort scratch so the
        // common path does not retain two words per point (the first
        // real rebuild re-allocates it, once).
        index.pair_scratch = Vec::new();
        index
    }

    /// Rebuilds the index in place over (moved) `points` — the epoch
    /// reindex path of dynamic topologies.
    ///
    /// Produces exactly the structure [`GridIndex::build`] would (the two
    /// share one fill routine, so keys, CSR offsets, **slot order**, the
    /// SoA position store and the per-cell centroids are all bitwise
    /// identical to a from-scratch build — pinned by
    /// `tests/mobility_equivalence.rs`), but reuses every allocation: once
    /// the buffers have grown to their high-water marks, a rebuild
    /// performs no heap allocations. The point count may differ from the
    /// previous build; capacity grows (once) and is reused afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the point dimensionality differs from the one the index
    /// was built with.
    pub fn rebuild_from<P: MetricPoint>(&mut self, points: &[P]) {
        self.fill(points, None);
    }

    /// As [`GridIndex::rebuild_from`], indexing only points with
    /// `alive[i]` — the epoch reindex path of **churned** populations
    /// (see [`GridIndex::build_masked`] for the mask semantics).
    ///
    /// Bit-identical to [`GridIndex::build_masked`] over the same inputs
    /// (one shared fill routine), and — because compaction preserves the
    /// ascending per-cell member order — the keys, CSR offsets, SoA store
    /// and centroids also match a fresh *unmasked* build over the live
    /// subset alone (`tests/churn_equivalence.rs` pins this).
    ///
    /// # Panics
    ///
    /// As [`GridIndex::rebuild_from`]; additionally panics when `alive`
    /// and `points` differ in length.
    pub fn rebuild_from_masked<P: MetricPoint>(&mut self, points: &[P], alive: &[bool]) {
        self.fill(points, Some(alive));
    }

    /// Patches the index after a population delta, in time proportional to
    /// the delta: only stations named in `moved` may have changed position
    /// or liveness since the last (re)build or repair. Spawned stations
    /// (indices at or beyond the previous [`GridIndex::domain_len`]) are
    /// picked up whether listed or not. Equivalent to
    /// [`GridIndex::repair_with_policy`] with the default
    /// [`RepairPolicy::Auto`].
    pub fn repair<P: MetricPoint>(
        &mut self,
        moved: &[usize],
        points: &[P],
        alive: Option<&[bool]>,
    ) {
        self.repair_with_policy(moved, points, alive, RepairPolicy::default());
    }

    /// The delta-aware repair path: detects which of the `moved` stations
    /// actually changed cell membership (cross-cell moves, kills, rejoins,
    /// spawns), splices only the affected CSR cell runs — member slots,
    /// [`GridIndex::slot_ids`] order, the SoA [`PositionStore`] columns
    /// and the centroids of touched cells — and leaves every untouched
    /// cell's bytes alone. Same-cell moves patch coordinates in place.
    ///
    /// The result is **bit-identical** to [`GridIndex::build_masked`] over
    /// the same population (same key order, same slot order, same
    /// floating-point centroid sums) — `tests/repair_equivalence.rs` and
    /// the mobility/churn differential batteries pin this. Under
    /// [`RepairPolicy::Auto`] dense deltas fall back to the full in-place
    /// rebuild, which amortizes better through one sort.
    ///
    /// All repair buffers are reused between calls: steady-state repairs
    /// perform no heap allocations.
    ///
    /// # Contract
    ///
    /// Stations absent from `moved` (and below the previous domain) must
    /// have bit-identical coordinates and unchanged liveness; `points` may
    /// only grow. Listing an unchanged station is harmless (it is detected
    /// and skipped).
    ///
    /// # Panics
    ///
    /// Panics if an index in `moved` is out of range, the backing slice
    /// shrank, the dimensionality changed, or a mask is present with the
    /// wrong length.
    pub fn repair_with_policy<P: MetricPoint>(
        &mut self,
        moved: &[usize],
        points: &[P],
        alive: Option<&[bool]>,
        policy: RepairPolicy,
    ) {
        assert_eq!(P::AXES, self.axes, "point dimensionality mismatch");
        if let Some(a) = alive {
            assert_eq!(
                a.len(),
                points.len(),
                "liveness mask must cover every point"
            );
        }
        assert!(
            points.len() >= self.domain,
            "repair cannot shrink the backing slice ({} -> {} points)",
            self.domain,
            points.len()
        );
        if matches!(policy, RepairPolicy::AlwaysFull) {
            self.fill(points, alive);
            return;
        }
        let live = |i: usize| alive.map_or(true, |a| a[i]);

        // Deduplicate the candidates (a station can be both a churn-delta
        // member and a mover) and sweep in spawned indices.
        let mut dirty = std::mem::take(&mut self.repair.moved);
        dirty.clear();
        dirty.extend_from_slice(moved);
        dirty.extend(self.domain..points.len());
        dirty.sort_unstable();
        dirty.dedup();
        if let Some(&max) = dirty.last() {
            assert!(
                max < points.len(),
                "moved index {max} out of range ({} points)",
                points.len()
            );
        }
        self.slot_of.resize(points.len(), usize::MAX);

        // Classify: removals (slots leaving a cell), inserts (ids entering
        // one), in-place coordinate patches (same cell). Unchanged
        // stations listed out of caution are detected and skipped.
        let mut removals = std::mem::take(&mut self.repair.removals);
        let mut inserts = std::mem::take(&mut self.repair.inserts);
        let mut touched = std::mem::take(&mut self.repair.touched);
        removals.clear();
        inserts.clear();
        touched.clear();
        let mut changed = 0usize;
        for &i in &dirty {
            let old_slot = self.slot_of[i];
            let was = old_slot != usize::MAX;
            let is = live(i);
            match (was, is) {
                (false, false) => {}
                (true, false) => {
                    removals.push(old_slot);
                    changed += 1;
                }
                (false, true) => {
                    inserts.push((Self::key_of(&points[i], self.cell_side), i));
                    changed += 1;
                }
                (true, true) => {
                    let unchanged = (0..P::AXES).all(|a| {
                        self.store.coord(old_slot, a).to_bits() == points[i].coord(a).to_bits()
                    });
                    if unchanged {
                        continue;
                    }
                    let new_key = Self::key_of(&points[i], self.cell_side);
                    let c_old = self.cell_of_slot(old_slot);
                    if self.keys[c_old] == new_key {
                        // Moved within its cell: patch the SoA columns in
                        // place, remember the cell for centroid recompute.
                        self.store.set(old_slot, &points[i]);
                        touched.push(c_old);
                    } else {
                        removals.push(old_slot);
                        inserts.push((new_key, i));
                    }
                    changed += 1;
                }
            }
        }
        self.repair.moved = dirty;

        if let RepairPolicy::Auto { threshold } = policy {
            if changed as f64 > threshold * self.len.max(1) as f64 {
                // Dense delta: one sort beats many splices. The in-place
                // coordinate patches above are overwritten by the fill.
                self.repair.removals = removals;
                self.repair.inserts = inserts;
                self.repair.touched = touched;
                self.fill(points, alive);
                return;
            }
        }

        self.domain = points.len();
        touched.sort_unstable();
        touched.dedup();
        if removals.is_empty() && inserts.is_empty() {
            // Same-cell moves only: membership untouched, recompute the
            // touched centroids (member order — identical to a fresh
            // build's arithmetic).
            for &c in &touched {
                self.centroids[c] =
                    Self::centroid_of::<P>(&self.ids[self.starts[c]..self.starts[c + 1]], points);
            }
            self.repair.removals = removals;
            self.repair.inserts = inserts;
            self.repair.touched = touched;
            return;
        }
        removals.sort_unstable();
        inserts.sort_unstable();
        self.repair.removals = removals;
        self.repair.inserts = inserts;
        self.repair.touched = touched;
        self.merge_splice(points);
    }

    /// The membership-edit sweep of the repair path: emits the merged CSR
    /// arrays into the double buffers — untouched cells copied wholesale
    /// (centroid bits included), edited cells re-merged member by member —
    /// and swaps them in. One pass, no sort of the population, no
    /// allocation once the buffers reach their high-water marks.
    fn merge_splice<P: MetricPoint>(&mut self, points: &[P]) {
        let mut keys2 = std::mem::take(&mut self.repair.keys_alt);
        let mut starts2 = std::mem::take(&mut self.repair.starts_alt);
        let mut ids2 = std::mem::take(&mut self.repair.ids_alt);
        let mut store2 = std::mem::take(&mut self.repair.store_alt);
        let mut cents2 = std::mem::take(&mut self.repair.centroids_alt);
        keys2.clear();
        starts2.clear();
        ids2.clear();
        cents2.clear();
        store2.reset_axes(self.axes);
        let grow = self.repair.inserts.len();
        ids2.reserve(self.len + grow);
        store2.reserve(self.len + grow);

        let removals = &self.repair.removals;
        let inserts = &self.repair.inserts;
        let touched = &self.repair.touched;
        let slot_of = &mut self.slot_of;
        slot_of.clear();
        slot_of.resize(self.domain, usize::MAX);
        let (mut rem_i, mut ins_i, mut tou_i) = (0usize, 0usize, 0usize);

        let n_cells = self.keys.len();
        let mut c = 0usize;
        while c < n_cells || ins_i < inserts.len() {
            let insert_cell = match (c < n_cells, ins_i < inserts.len()) {
                (true, true) => inserts[ins_i].0 < self.keys[c],
                (has_old, _) => !has_old,
            };
            if insert_cell {
                // A brand-new cell made entirely of inserted stations
                // (already in ascending id order within the key run).
                let key = inserts[ins_i].0;
                let cell_start = ids2.len();
                keys2.push(key);
                starts2.push(cell_start);
                while ins_i < inserts.len() && inserts[ins_i].0 == key {
                    let i = inserts[ins_i].1;
                    slot_of[i] = ids2.len();
                    ids2.push(i);
                    store2.push(&points[i]);
                    ins_i += 1;
                }
                cents2.push(Self::centroid_of::<P>(&ids2[cell_start..], points));
                continue;
            }

            let key = self.keys[c];
            let range = self.starts[c]..self.starts[c + 1];
            let has_ins = ins_i < inserts.len() && inserts[ins_i].0 == key;
            let has_rem = rem_i < removals.len() && removals[rem_i] < range.end;
            while tou_i < touched.len() && touched[tou_i] < c {
                tou_i += 1;
            }
            let coords_touched = tou_i < touched.len() && touched[tou_i] == c;
            if !has_ins && !has_rem {
                // Membership untouched: wholesale copy (per-axis memcpy);
                // the centroid bits carry over unless a same-cell move
                // patched a member's coordinates.
                let cell_start = ids2.len();
                keys2.push(key);
                starts2.push(cell_start);
                for (off, &i) in self.ids[range.clone()].iter().enumerate() {
                    slot_of[i] = cell_start + off;
                }
                ids2.extend_from_slice(&self.ids[range.clone()]);
                store2.extend_from(&self.store, range);
                if coords_touched {
                    cents2.push(Self::centroid_of::<P>(&ids2[cell_start..], points));
                } else {
                    cents2.push(self.centroids[c]);
                }
                c += 1;
                continue;
            }

            // Membership edit: merge the kept members (ascending ids,
            // removal slots skipped) with this key's inserts (ascending
            // ids). A cell losing every member vanishes, exactly as in a
            // fresh build.
            let cell_start = ids2.len();
            let mut s = range.start;
            loop {
                while s < range.end && rem_i < removals.len() && removals[rem_i] == s {
                    rem_i += 1;
                    s += 1;
                }
                let kept = (s < range.end).then(|| self.ids[s]);
                let ins =
                    (ins_i < inserts.len() && inserts[ins_i].0 == key).then(|| inserts[ins_i].1);
                match (kept, ins) {
                    (None, None) => break,
                    (Some(k), Some(j)) if j < k => {
                        slot_of[j] = ids2.len();
                        ids2.push(j);
                        store2.push(&points[j]);
                        ins_i += 1;
                    }
                    (Some(k), _) => {
                        slot_of[k] = ids2.len();
                        ids2.push(k);
                        store2.extend_from(&self.store, s..s + 1);
                        s += 1;
                    }
                    (None, Some(j)) => {
                        slot_of[j] = ids2.len();
                        ids2.push(j);
                        store2.push(&points[j]);
                        ins_i += 1;
                    }
                }
            }
            if ids2.len() > cell_start {
                keys2.push(key);
                starts2.push(cell_start);
                cents2.push(Self::centroid_of::<P>(&ids2[cell_start..], points));
            }
            c += 1;
        }
        starts2.push(ids2.len());

        std::mem::swap(&mut self.keys, &mut keys2);
        std::mem::swap(&mut self.starts, &mut starts2);
        std::mem::swap(&mut self.ids, &mut ids2);
        std::mem::swap(&mut self.store, &mut store2);
        std::mem::swap(&mut self.centroids, &mut cents2);
        self.repair.keys_alt = keys2;
        self.repair.starts_alt = starts2;
        self.repair.ids_alt = ids2;
        self.repair.store_alt = store2;
        self.repair.centroids_alt = cents2;
        self.len = self.ids.len();
    }

    /// Index of the populated cell owning `slot`.
    fn cell_of_slot(&self, slot: usize) -> usize {
        debug_assert!(slot < self.len, "slot out of range");
        self.starts.partition_point(|&s| s <= slot) - 1
    }

    /// Slot of point `i`, or `None` when `i` is not indexed (dead, or
    /// beyond the indexed domain). The reverse of [`GridIndex::slot_ids`];
    /// the graph repair path uses it to recover a moved station's previous
    /// coordinates from [`GridIndex::positions`].
    pub fn slot_of(&self, i: usize) -> Option<usize> {
        self.slot_of.get(i).copied().filter(|&s| s != usize::MAX)
    }

    /// The one fill routine behind every build/rebuild entry point, so
    /// rebuilt indexes are bitwise indistinguishable from fresh ones.
    fn fill<P: MetricPoint>(&mut self, points: &[P], alive: Option<&[bool]>) {
        assert_eq!(P::AXES, self.axes, "point dimensionality mismatch");
        if let Some(alive) = alive {
            assert_eq!(
                alive.len(),
                points.len(),
                "liveness mask must cover every point"
            );
        }
        let live = |i: usize| alive.map_or(true, |a| a[i]);
        // Take the scratch out so the fill loop can borrow `self` mutably
        // (mem::take leaves a capacity-less Vec, not an allocation).
        let mut pairs = std::mem::take(&mut self.pair_scratch);
        pairs.clear();
        pairs.extend(
            points
                .iter()
                .enumerate()
                .filter(|&(i, _)| live(i))
                .map(|(i, p)| (Self::key_of(p, self.cell_side), i)),
        );
        pairs.sort_unstable();
        self.keys.clear();
        self.starts.clear();
        self.ids.clear();
        self.ids.reserve(pairs.len());
        self.store.clear();
        self.store.reserve(pairs.len());
        self.centroids.clear();
        for &(key, i) in &pairs {
            if self.keys.last() != Some(&key) {
                self.keys.push(key);
                self.starts.push(self.ids.len());
            }
            self.ids.push(i);
            self.store.push(&points[i]);
        }
        self.starts.push(self.ids.len());
        self.pair_scratch = pairs;
        // Per-cell member centroids: sum coordinates in member (= slot)
        // order, then scale by 1/len — the exact arithmetic the reception
        // kernels historically performed per round. The repair path
        // recomputes touched cells through the same helper, so repaired
        // centroids are bit-identical to freshly built ones.
        for c in 0..self.keys.len() {
            self.centroids.push(Self::centroid_of::<P>(
                &self.ids[self.starts[c]..self.starts[c + 1]],
                points,
            ));
        }
        self.len = self.ids.len();
        self.domain = points.len();
        // Reverse slot map: id → slot (MAX for unindexed ids), the repair
        // path's handle on a station's previous cell and coordinates.
        self.slot_of.clear();
        self.slot_of.resize(self.domain, usize::MAX);
        for (s, &i) in self.ids.iter().enumerate() {
            self.slot_of[i] = s;
        }
    }

    /// Member centroid of the cell owning `ids`: coordinate sums in member
    /// order scaled by `1/len` — the one centroid routine behind both
    /// [`GridIndex::build`]-style fills and the repair path, so the two
    /// agree bitwise.
    fn centroid_of<P: MetricPoint>(ids: &[usize], points: &[P]) -> [f64; 3] {
        let mut cent = [0.0f64; 3];
        for &i in ids {
            for (axis, slot) in cent.iter_mut().enumerate().take(P::AXES) {
                *slot += points[i].coord(axis);
            }
        }
        let inv = 1.0 / ids.len() as f64;
        for v in &mut cent {
            *v *= inv;
        }
        cent
    }

    fn key_of<P: MetricPoint>(p: &P, cell_side: f64) -> CellKey {
        let mut key = [0i64; 3];
        for (axis, slot) in key.iter_mut().enumerate().take(P::AXES) {
            *slot = (p.coord(axis) / cell_side).floor() as i64;
        }
        key
    }

    /// Number of **indexed** points (the live population under a
    /// liveness mask; equals [`GridIndex::domain_len`] for unmasked
    /// builds).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Length of the point slice the index was built over — the slice
    /// length queries must be called with. Exceeds [`GridIndex::len`]
    /// when a liveness mask tombstones part of the population.
    pub fn domain_len(&self) -> usize {
        self.domain
    }

    /// Whether the index indexes no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cell side used at construction.
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    /// Number of populated cells.
    pub fn num_cells(&self) -> usize {
        self.keys.len()
    }

    /// Key of populated cell `c` (cells are ordered lexicographically by
    /// key; `c < self.num_cells()`).
    pub fn cell_key(&self, c: usize) -> CellKey {
        self.keys[c]
    }

    /// Point indices in populated cell `c`, in ascending order.
    pub fn cell_members(&self, c: usize) -> &[usize] {
        &self.ids[self.starts[c]..self.starts[c + 1]]
    }

    /// Slot range of populated cell `c`: its members occupy
    /// `slot_ids()[range]` and the same range of [`GridIndex::positions`].
    pub fn cell_range(&self, c: usize) -> std::ops::Range<usize> {
        self.starts[c]..self.starts[c + 1]
    }

    /// Point indices in slot order (the concatenation of all cells'
    /// member lists; `slot_ids()[s]` is the point stored at slot `s`).
    pub fn slot_ids(&self) -> &[usize] {
        &self.ids
    }

    /// The slot-ordered SoA copy of the indexed coordinates (slot `s`
    /// holds the position of point `slot_ids()[s]`), for batched kernels.
    pub fn positions(&self) -> &PositionStore {
        &self.store
    }

    /// Member centroid of populated cell `c` (trailing axes stay 0) —
    /// precomputed at build, in member order, exactly as the reception
    /// kernels historically accumulated it per round.
    pub fn cell_centroid(&self, c: usize) -> &[f64; 3] {
        &self.centroids[c]
    }

    /// The cell key `point` falls into under this index's cell side.
    pub fn key_for<P: MetricPoint>(&self, point: &P) -> CellKey {
        debug_assert_eq!(P::AXES, self.axes, "point dimensionality mismatch");
        Self::key_of(point, self.cell_side)
    }

    /// Members of the cell with `key`, or the empty slice for an
    /// unpopulated cell.
    pub fn members_of(&self, key: &CellKey) -> &[usize] {
        match self.keys.binary_search(key) {
            Ok(c) => self.cell_members(c),
            Err(_) => &[],
        }
    }

    /// Indices of all points at distance `<= radius` from `center`,
    /// in ascending index order.
    ///
    /// `points` must be the same slice the index was built from. Allocates
    /// a result buffer per call — inner loops should prefer
    /// [`GridIndex::for_each_in_ball`].
    pub fn ball<'a, P: MetricPoint>(
        &'a self,
        points: &'a [P],
        center: P,
        radius: f64,
    ) -> impl Iterator<Item = usize> + 'a {
        let mut out = Vec::new();
        self.for_each_in_ball(points, center, radius, |i| out.push(i));
        out.sort_unstable();
        out.into_iter()
    }

    /// Indices of all points at distance `<= radius` from `center`, collected.
    ///
    /// Thin wrapper over [`GridIndex::ball`]; prefer
    /// [`GridIndex::for_each_in_ball`] inside loops.
    pub fn ball_vec<P: MetricPoint>(&self, points: &[P], center: P, radius: f64) -> Vec<usize> {
        self.ball(points, center, radius).collect()
    }

    /// Number of points at distance `<= radius` from `center`.
    pub fn ball_count<P: MetricPoint>(&self, points: &[P], center: P, radius: f64) -> usize {
        let mut count = 0;
        self.for_each_in_ball(points, center, radius, |_| count += 1);
        count
    }

    /// Calls `f(i)` for every point `i` at distance `<= radius` from
    /// `center`, without allocating.
    ///
    /// Visit order is deterministic — lexicographic in the cell key, then
    /// ascending index within each cell — but **not** globally ascending by
    /// index; collect and sort ([`GridIndex::ball`]) when order matters.
    ///
    /// Distances are evaluated through the index's SoA
    /// [`PositionStore`] in batches (bitwise identical to the scalar
    /// per-point test); `points` is retained for the length contract only.
    pub fn for_each_in_ball<P: MetricPoint>(
        &self,
        points: &[P],
        center: P,
        radius: f64,
        mut f: impl FnMut(usize),
    ) {
        debug_assert_eq!(points.len(), self.domain, "index/point-slice mismatch");
        let cq = Self::center_coords(&center);
        let (lo, hi) = self.query_box(&center, radius);
        // One criterion per query amortizes its sqrt probes over every
        // candidate cell; the per-slot test is then sqrt-free yet makes
        // bitwise the same decisions as `distance.sqrt() <= radius`.
        let crit = crate::simd::radius_criterion(radius);
        self.for_each_candidate_cell(&lo, &hi, &mut |c| {
            self.store
                .for_each_within_sq(self.cell_range(c), &cq, crit, |slot| f(self.ids[slot]));
        });
    }

    /// `center`'s coordinates in the fixed-width form the batch kernels
    /// take (trailing axes zero).
    fn center_coords<P: MetricPoint>(center: &P) -> [f64; 3] {
        center.coords()
    }

    /// [`GridIndex::for_each_in_ball`] addressed by raw coordinates
    /// (trailing axes ignored) instead of a point from the backing slice.
    ///
    /// Exists for the graph repair path, which queries a station's *old*
    /// neighborhood against the pre-repair index while holding the *new*
    /// point slice — a slice whose length may already exceed this index's
    /// domain, so no slice-length contract applies here.
    pub fn for_each_in_ball_at(&self, center: [f64; 3], radius: f64, mut f: impl FnMut(usize)) {
        let (lo, hi) = self.query_box_coords(&center, radius);
        let crit = crate::simd::radius_criterion(radius);
        self.for_each_candidate_cell(&lo, &hi, &mut |c| {
            self.store
                .for_each_within_sq(self.cell_range(c), &center, crit, |slot| f(self.ids[slot]));
        });
    }

    /// Nearest indexed point to `center` other than `exclude` (pass
    /// `usize::MAX` to exclude nothing). Returns `None` for an empty index or
    /// when the only point is excluded.
    ///
    /// Runs expanding ring searches over the grid, so it is efficient when a
    /// neighbour exists within a few cells, and falls back to a linear scan
    /// otherwise.
    pub fn nearest<P: MetricPoint>(
        &self,
        points: &[P],
        center: P,
        exclude: usize,
    ) -> Option<(usize, f64)> {
        if self.len == 0 || (self.len == 1 && self.ids[0] == exclude) {
            return None;
        }
        // Expanding search: radius doubles until a hit is confirmed closer
        // than the next un-searched shell could be.
        let cq = Self::center_coords(&center);
        let mut radius = self.cell_side;
        for _ in 0..64 {
            let mut best: Option<(usize, f64)> = None;
            let (lo, hi) = self.query_box(&center, radius);
            self.for_each_candidate_cell(&lo, &hi, &mut |c| {
                for slot in self.cell_range(c) {
                    let i = self.ids[slot];
                    if i == exclude {
                        continue;
                    }
                    let d = self.store.distance_sq_to(slot, &cq).sqrt();
                    if best.map_or(true, |(_, bd)| d < bd) {
                        best = Some((i, d));
                    }
                }
            });
            if let Some((i, d)) = best {
                if d <= radius {
                    return Some((i, d));
                }
            }
            radius *= 2.0;
        }
        // Fallback: exhaustive scan over the *indexed* points
        // (pathological coordinate spread; masked-out points stay
        // invisible here too).
        self.ids
            .iter()
            .copied()
            .filter(|&i| i != exclude)
            .map(|i| (i, points[i].distance(&center)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Cell-key bounding box of the ball `B(center, radius)`.
    fn query_box<P: MetricPoint>(&self, center: &P, radius: f64) -> (CellKey, CellKey) {
        debug_assert_eq!(P::AXES, self.axes, "point dimensionality mismatch");
        self.query_box_coords(&Self::center_coords(center), radius)
    }

    /// [`GridIndex::query_box`] over raw coordinates.
    fn query_box_coords(&self, center: &[f64; 3], radius: f64) -> (CellKey, CellKey) {
        let mut lo = [0i64; 3];
        let mut hi = [0i64; 3];
        for axis in 0..self.axes {
            lo[axis] = ((center[axis] - radius) / self.cell_side).floor() as i64;
            hi[axis] = ((center[axis] + radius) / self.cell_side).floor() as i64;
        }
        (lo, hi)
    }

    /// Calls `f` with the index of every populated cell whose key lies in
    /// the box `[lo, hi]`, in lexicographic key order.
    fn for_each_candidate_cell(&self, lo: &CellKey, hi: &CellKey, f: &mut impl FnMut(usize)) {
        // Guard against enormous radii relative to cell side: cap the cell
        // walk at the number of populated cells by scanning the sorted list.
        let box_cells: i128 = (0..self.axes)
            .map(|a| (hi[a] - lo[a] + 1) as i128)
            .product();
        if box_cells > self.keys.len() as i128 {
            for (c, key) in self.keys.iter().enumerate() {
                if (0..self.axes).all(|a| key[a] >= lo[a] && key[a] <= hi[a]) {
                    f(c);
                }
            }
            return;
        }
        let mut key = [0i64; 3];
        self.walk_cells(&mut key, 0, lo, hi, f);
    }

    fn walk_cells(
        &self,
        key: &mut CellKey,
        axis: usize,
        lo: &CellKey,
        hi: &CellKey,
        f: &mut impl FnMut(usize),
    ) {
        if axis == self.axes {
            if let Ok(c) = self.keys.binary_search(key) {
                f(c);
            }
            return;
        }
        for v in lo[axis]..=hi[axis] {
            key[axis] = v;
            self.walk_cells(key, axis + 1, lo, hi, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{Point1, Point2, Point3};
    use rand::{Rng, SeedableRng, SmallRng};

    fn brute_ball<P: MetricPoint>(points: &[P], center: P, radius: f64) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(&center) <= radius)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_index() {
        let pts: Vec<Point2> = vec![];
        let idx = GridIndex::build(&pts, 1.0);
        assert!(idx.is_empty());
        assert_eq!(idx.num_cells(), 0);
        assert_eq!(
            idx.ball_vec(&pts, Point2::origin(), 10.0),
            Vec::<usize>::new()
        );
        assert_eq!(idx.nearest(&pts, Point2::origin(), usize::MAX), None);
    }

    #[test]
    fn single_point() {
        let pts = vec![Point2::new(0.5, 0.5)];
        let idx = GridIndex::build(&pts, 1.0);
        assert_eq!(idx.ball_vec(&pts, Point2::origin(), 1.0), vec![0]);
        assert_eq!(
            idx.ball_vec(&pts, Point2::origin(), 0.1),
            Vec::<usize>::new()
        );
        assert_eq!(idx.nearest(&pts, Point2::origin(), 0), None);
    }

    #[test]
    fn boundary_point_included() {
        // Distance exactly equal to the radius must be included (<=).
        let pts = vec![Point2::new(1.0, 0.0)];
        let idx = GridIndex::build(&pts, 1.0);
        assert_eq!(idx.ball_vec(&pts, Point2::origin(), 1.0), vec![0]);
    }

    #[test]
    fn negative_coordinates() {
        let pts = vec![
            Point2::new(-3.7, -2.2),
            Point2::new(-3.6, -2.2),
            Point2::new(4.0, 4.0),
        ];
        let idx = GridIndex::build(&pts, 1.0);
        assert_eq!(
            idx.ball_vec(&pts, Point2::new(-3.65, -2.2), 0.2),
            vec![0, 1]
        );
    }

    #[test]
    fn nearest_simple() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(5.0, 5.0),
        ];
        let idx = GridIndex::build(&pts, 1.0);
        let (i, d) = idx
            .nearest(&pts, Point2::new(0.9, 0.0), usize::MAX)
            .unwrap();
        assert_eq!(i, 1);
        assert!((d - 0.1).abs() < 1e-12);
        // excluding the nearest returns the next one
        let (i2, _) = idx.nearest(&pts, Point2::new(0.9, 0.0), 1).unwrap();
        assert_eq!(i2, 0);
    }

    #[test]
    fn nearest_far_point() {
        // Point much farther than one cell: expanding search must find it.
        let pts = vec![Point2::new(100.0, 100.0)];
        let idx = GridIndex::build(&pts, 1.0);
        let (i, d) = idx.nearest(&pts, Point2::origin(), usize::MAX).unwrap();
        assert_eq!(i, 0);
        assert!((d - (2.0f64).sqrt() * 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_cell_side_panics() {
        let pts = vec![Point2::origin()];
        let _ = GridIndex::build(&pts, 0.0);
    }

    #[test]
    fn works_in_1d_and_3d() {
        let pts1 = vec![Point1::new(0.0), Point1::new(0.9), Point1::new(2.0)];
        let idx1 = GridIndex::build(&pts1, 1.0);
        assert_eq!(idx1.ball_vec(&pts1, Point1::new(0.0), 1.0), vec![0, 1]);

        let pts3 = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(0.5, 0.5, 0.5)];
        let idx3 = GridIndex::build(&pts3, 1.0);
        assert_eq!(idx3.ball_vec(&pts3, Point3::origin(), 1.0), vec![0, 1]);
    }

    #[test]
    fn huge_radius_uses_list_scan() {
        let pts: Vec<Point2> = (0..50)
            .map(|i| Point2::new(i as f64 * 0.1, (i % 7) as f64 * 0.1))
            .collect();
        let idx = GridIndex::build(&pts, 0.01); // tiny cells => bounding box huge
        let got = idx.ball_vec(&pts, Point2::origin(), 1e6);
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn ball_count_matches_ball_len() {
        let pts: Vec<Point2> = (0..100)
            .map(|i| Point2::new((i as f64 * 0.37).sin() * 5.0, (i as f64 * 0.73).cos() * 5.0))
            .collect();
        let idx = GridIndex::build(&pts, 1.0);
        for r in [0.1, 0.5, 1.0, 3.0] {
            assert_eq!(
                idx.ball_count(&pts, Point2::origin(), r),
                idx.ball_vec(&pts, Point2::origin(), r).len()
            );
        }
    }

    #[test]
    fn cells_are_sorted_and_partition_the_points() {
        let pts: Vec<Point2> = (0..60)
            .map(|i| Point2::new((i % 9) as f64 * 0.7, (i / 9) as f64 * 0.7))
            .collect();
        let idx = GridIndex::build(&pts, 1.0);
        let mut seen = Vec::new();
        for c in 0..idx.num_cells() {
            if c > 0 {
                assert!(idx.cell_key(c - 1) < idx.cell_key(c), "keys sorted");
            }
            let members = idx.cell_members(c);
            assert!(!members.is_empty(), "only populated cells are stored");
            assert!(members.windows(2).all(|w| w[0] < w[1]), "members ascending");
            for &i in members {
                assert_eq!(idx.key_for(&pts[i]), idx.cell_key(c));
            }
            seen.extend_from_slice(members);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..60).collect::<Vec<_>>(), "cells partition points");
        assert_eq!(idx.members_of(&[1000, 1000, 0]), &[] as &[usize]);
    }

    #[test]
    fn slots_store_and_centroids_are_consistent() {
        let pts: Vec<Point2> = (0..60)
            .map(|i| Point2::new((i % 9) as f64 * 0.7 - 2.0, (i / 9) as f64 * 0.7))
            .collect();
        let idx = GridIndex::build(&pts, 1.0);
        assert_eq!(idx.slot_ids().len(), pts.len());
        assert_eq!(idx.positions().len(), pts.len());
        for c in 0..idx.num_cells() {
            let range = idx.cell_range(c);
            assert_eq!(&idx.slot_ids()[range.clone()], idx.cell_members(c));
            // Store slots mirror the member coordinates exactly.
            let mut cent = [0.0f64; 3];
            for slot in range.clone() {
                let p = pts[idx.slot_ids()[slot]];
                assert_eq!(idx.positions().coord(slot, 0), p.x);
                assert_eq!(idx.positions().coord(slot, 1), p.y);
                cent[0] += p.x;
                cent[1] += p.y;
            }
            let inv = 1.0 / range.len() as f64;
            for v in &mut cent {
                *v *= inv;
            }
            // Bitwise: the same summation order and scaling as build().
            for (axis, want) in cent.iter().enumerate() {
                assert_eq!(
                    idx.cell_centroid(c)[axis].to_bits(),
                    want.to_bits(),
                    "cell {c} axis {axis}"
                );
            }
        }
    }

    #[test]
    fn visitor_matches_ball_contents() {
        let pts: Vec<Point2> = (0..80)
            .map(|i| Point2::new((i as f64 * 0.41).sin() * 4.0, (i as f64 * 0.59).cos() * 4.0))
            .collect();
        let idx = GridIndex::build(&pts, 0.8);
        for r in [0.3, 1.0, 2.5, 50.0] {
            let mut visited = Vec::new();
            idx.for_each_in_ball(&pts, Point2::new(0.2, -0.1), r, |i| visited.push(i));
            visited.sort_unstable();
            assert_eq!(visited, idx.ball_vec(&pts, Point2::new(0.2, -0.1), r));
        }
    }

    #[test]
    fn rebuild_matches_fresh_build() {
        let mut pts: Vec<Point2> = (0..90)
            .map(|i| Point2::new((i as f64 * 0.43).sin() * 4.0, (i as f64 * 0.61).cos() * 4.0))
            .collect();
        let mut idx = GridIndex::build(&pts, 1.0);
        for step in 0..5 {
            for (i, p) in pts.iter_mut().enumerate() {
                p.x += ((i + step) % 5) as f64 * 0.21 - 0.4;
                p.y -= ((i * 3 + step) % 7) as f64 * 0.13 - 0.35;
            }
            idx.rebuild_from(&pts);
            let fresh = GridIndex::build(&pts, 1.0);
            assert_eq!(idx, fresh, "step {step}");
            // Queries through the rebuilt index agree with brute force.
            let got = idx.ball_vec(&pts, Point2::origin(), 2.0);
            assert_eq!(got, brute_ball(&pts, Point2::origin(), 2.0));
        }
    }

    #[test]
    fn rebuild_handles_shrinking_and_growing_point_sets() {
        let big: Vec<Point2> = (0..60).map(|i| Point2::new(i as f64 * 0.3, 0.0)).collect();
        let small: Vec<Point2> = big[..10].to_vec();
        let mut idx = GridIndex::build(&big, 1.0);
        idx.rebuild_from(&small);
        assert_eq!(idx.len(), 10);
        assert_eq!(idx, GridIndex::build(&small, 1.0));
        idx.rebuild_from(&big);
        assert_eq!(idx.len(), 60);
        assert_eq!(idx, GridIndex::build(&big, 1.0));
    }

    #[test]
    fn masked_build_hides_dead_points_but_keeps_indices() {
        let pts: Vec<Point2> = (0..40).map(|i| Point2::new(i as f64 * 0.3, 0.0)).collect();
        let alive: Vec<bool> = (0..40).map(|i| i % 3 != 0).collect();
        let idx = GridIndex::build_masked(&pts, &alive, 1.0);
        assert_eq!(idx.len(), alive.iter().filter(|&&a| a).count());
        assert_eq!(idx.domain_len(), 40);
        // Ball queries report original indices and never a dead point.
        let got = idx.ball_vec(&pts, Point2::origin(), 100.0);
        let want: Vec<usize> = (0..40).filter(|&i| alive[i]).collect();
        assert_eq!(got, want);
        // Nearest skips dead points too (index 0 is dead; 1 is closest).
        let (i, _) = idx
            .nearest(&pts, Point2::new(0.0, 0.0), usize::MAX)
            .unwrap();
        assert_eq!(i, 1);
    }

    #[test]
    fn masked_rebuild_matches_masked_fresh_build_bitwise() {
        let mut pts: Vec<Point2> = (0..90)
            .map(|i| Point2::new((i as f64 * 0.43).sin() * 4.0, (i as f64 * 0.61).cos() * 4.0))
            .collect();
        let mut alive = vec![true; 90];
        let mut idx = GridIndex::build(&pts, 1.0);
        for step in 0..5usize {
            for (i, p) in pts.iter_mut().enumerate() {
                p.x += ((i + step) % 5) as f64 * 0.21 - 0.4;
            }
            for (i, a) in alive.iter_mut().enumerate() {
                *a = (i * 7 + step) % 4 != 0;
            }
            idx.rebuild_from_masked(&pts, &alive);
            assert_eq!(
                idx,
                GridIndex::build_masked(&pts, &alive, 1.0),
                "step {step}"
            );
            // And against an unmasked fresh build of the compacted live
            // subset: identical keys/offsets/coordinates, index-mapped ids.
            let live: Vec<Point2> = pts
                .iter()
                .zip(&alive)
                .filter(|(_, &a)| a)
                .map(|(p, _)| *p)
                .collect();
            let compact = GridIndex::build(&live, 1.0);
            assert_eq!(idx.num_cells(), compact.num_cells());
            let mut map = vec![usize::MAX; pts.len()];
            let mut next = 0;
            for (i, &a) in alive.iter().enumerate() {
                if a {
                    map[i] = next;
                    next += 1;
                }
            }
            for c in 0..idx.num_cells() {
                assert_eq!(idx.cell_key(c), compact.cell_key(c));
                assert_eq!(idx.cell_range(c), compact.cell_range(c));
                for axis in 0..2 {
                    assert_eq!(
                        idx.cell_centroid(c)[axis].to_bits(),
                        compact.cell_centroid(c)[axis].to_bits()
                    );
                }
                let mapped: Vec<usize> = idx.cell_members(c).iter().map(|&i| map[i]).collect();
                assert_eq!(mapped, compact.cell_members(c));
            }
            for slot in 0..idx.len() {
                for axis in 0..2 {
                    assert_eq!(
                        idx.positions().coord(slot, axis).to_bits(),
                        compact.positions().coord(slot, axis).to_bits()
                    );
                }
            }
        }
    }

    fn scatter(n: usize, scale: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                Point2::new(
                    (i as f64 * 0.43).sin() * scale,
                    (i as f64 * 0.61).cos() * scale,
                )
            })
            .collect()
    }

    #[test]
    fn repair_same_cell_moves_match_fresh_build() {
        let mut pts = scatter(120, 5.0);
        let mut idx = GridIndex::build(&pts, 1.0);
        // Nudge a few stations by less than anything that could change
        // their cell (coordinates well inside the cell interior).
        let moved = [3usize, 40, 77];
        for &i in &moved {
            pts[i].x = pts[i].x.floor() + 0.5 + (i as f64) * 1e-3;
            pts[i].y = pts[i].y.floor() + 0.5;
        }
        idx.repair_with_policy(&moved, &pts, None, RepairPolicy::AlwaysIncremental);
        assert_eq!(idx, GridIndex::build(&pts, 1.0));
    }

    #[test]
    fn repair_cross_cell_moves_match_fresh_build() {
        let mut pts = scatter(120, 5.0);
        let mut idx = GridIndex::build(&pts, 1.0);
        let moved = [0usize, 13, 59, 118];
        for &i in &moved {
            pts[i].x += 3.25;
            pts[i].y -= 2.5;
        }
        idx.repair_with_policy(&moved, &pts, None, RepairPolicy::AlwaysIncremental);
        assert_eq!(idx, GridIndex::build(&pts, 1.0));
    }

    #[test]
    fn repair_kills_rejoins_and_spawns_match_fresh_build() {
        let mut pts = scatter(100, 5.0);
        let mut alive = vec![true; 100];
        alive[17] = false; // starts dead, rejoins below
        let mut idx = GridIndex::build_masked(&pts, &alive, 1.0);
        // Kill two, revive one (at a new position), spawn three.
        alive[4] = false;
        alive[62] = false;
        alive[17] = true;
        pts[17] = Point2::new(-3.3, 4.1);
        pts.push(Point2::new(0.05, 0.05));
        pts.push(Point2::new(-4.9, -4.9));
        pts.push(Point2::new(2.5, 2.5));
        alive.extend([true, true, false]);
        // Spawns are picked up without being listed in `moved`.
        idx.repair_with_policy(
            &[4, 62, 17],
            &pts,
            Some(&alive),
            RepairPolicy::AlwaysIncremental,
        );
        assert_eq!(idx, GridIndex::build_masked(&pts, &alive, 1.0));
    }

    #[test]
    fn repair_skips_unchanged_listings() {
        let pts = scatter(80, 5.0);
        let mut idx = GridIndex::build(&pts, 1.0);
        // Every station listed, none actually changed: a no-op.
        let all: Vec<usize> = (0..pts.len()).collect();
        idx.repair_with_policy(&all, &pts, None, RepairPolicy::AlwaysIncremental);
        assert_eq!(idx, GridIndex::build(&pts, 1.0));
    }

    #[test]
    fn repair_auto_policy_falls_back_on_dense_deltas() {
        let mut pts = scatter(100, 5.0);
        let mut idx = GridIndex::build(&pts, 1.0);
        // Move over half the population: Auto must take the full-rebuild
        // path and still land bit-identical.
        let moved: Vec<usize> = (0..60).collect();
        for &i in &moved {
            pts[i].x += 1.75;
        }
        idx.repair(&moved, &pts, None);
        assert_eq!(idx, GridIndex::build(&pts, 1.0));
    }

    #[test]
    fn repair_randomized_interleavings_match_fresh_builds() {
        let mut rng = SmallRng::seed_from_u64(0x5e9a12);
        let mut pts = scatter(150, 6.0);
        let mut alive = vec![true; pts.len()];
        let mut idx = GridIndex::build_masked(&pts, &alive, 0.9);
        for step in 0..40 {
            let mut moved = Vec::new();
            // Random mix of moves (small and large), kills, rejoins, spawns.
            for _ in 0..rng.gen_range(0..12usize) {
                let i = rng.gen_range(0..pts.len());
                moved.push(i);
                match rng.gen_range(0..4u32) {
                    0 => {
                        pts[i].x += rng.gen_range(-0.2..0.2);
                        pts[i].y += rng.gen_range(-0.2..0.2);
                    }
                    1 => {
                        pts[i].x += rng.gen_range(-4.0..4.0);
                        pts[i].y += rng.gen_range(-4.0..4.0);
                    }
                    2 => alive[i] = false,
                    _ => alive[i] = true,
                }
            }
            for _ in 0..rng.gen_range(0..3usize) {
                pts.push(Point2::new(
                    rng.gen_range(-6.0..6.0),
                    rng.gen_range(-6.0..6.0),
                ));
                alive.push(rng.gen_range(0..4u32) != 0);
            }
            idx.repair_with_policy(&moved, &pts, Some(&alive), RepairPolicy::AlwaysIncremental);
            assert_eq!(
                idx,
                GridIndex::build_masked(&pts, &alive, 0.9),
                "step {step}"
            );
            // slot_of stays the exact inverse of slot_ids.
            for (s, &i) in idx.slot_ids().iter().enumerate() {
                assert_eq!(idx.slot_of(i), Some(s));
            }
            for (i, &live) in alive.iter().enumerate() {
                if !live {
                    assert_eq!(idx.slot_of(i), None);
                }
            }
        }
    }

    #[test]
    fn repair_then_query_matches_brute_force() {
        let mut pts = scatter(90, 4.0);
        let mut idx = GridIndex::build(&pts, 0.8);
        let moved = [5usize, 25, 45, 65, 85];
        for &i in &moved {
            pts[i].x -= 2.1;
            pts[i].y += 1.3;
        }
        idx.repair_with_policy(&moved, &pts, None, RepairPolicy::AlwaysIncremental);
        let got = idx.ball_vec(&pts, Point2::new(0.3, -0.2), 2.0);
        assert_eq!(got, brute_ball(&pts, Point2::new(0.3, -0.2), 2.0));
    }

    #[test]
    #[should_panic]
    fn masked_build_rejects_short_mask() {
        let pts = vec![Point2::origin(), Point2::new(1.0, 0.0)];
        let _ = GridIndex::build_masked(&pts, &[true], 1.0);
    }

    #[test]
    #[should_panic]
    fn rebuild_rejects_dimension_change() {
        let pts2 = vec![Point2::origin()];
        let mut idx = GridIndex::build(&pts2, 1.0);
        let pts3 = vec![Point3::origin()];
        idx.rebuild_from(&pts3);
    }

    // Randomized property checks below run seeded loops (the offline
    // build has no proptest); every case replays from its case id.

    #[test]
    fn grid_matches_brute_force_2d() {
        for case in 0u64..48 {
            let mut rng = SmallRng::seed_from_u64(0x6D1D_2001 + case);
            let n = rng.gen_range(0usize..120);
            let pts: Vec<Point2> = (0..n)
                .map(|_| Point2::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)))
                .collect();
            let center = Point2::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0));
            let radius = rng.gen_range(0.01..20.0);
            let cell = rng.gen_range(0.1..5.0);
            let idx = GridIndex::build(&pts, cell);
            let got = idx.ball_vec(&pts, center, radius);
            let want = brute_ball(&pts, center, radius);
            assert_eq!(got, want, "case {case}");
        }
    }

    #[test]
    fn grid_matches_brute_force_1d() {
        for case in 0u64..48 {
            let mut rng = SmallRng::seed_from_u64(0x6D1D_3001 + case);
            let n = rng.gen_range(0usize..80);
            let pts: Vec<Point1> = (0..n)
                .map(|_| Point1::new(rng.gen_range(-100.0..100.0)))
                .collect();
            let center = Point1::new(rng.gen_range(-100.0..100.0));
            let radius = rng.gen_range(0.01..30.0);
            let idx = GridIndex::build(&pts, 1.0);
            let got = idx.ball_vec(&pts, center, radius);
            let want = brute_ball(&pts, center, radius);
            assert_eq!(got, want, "case {case}");
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        for case in 0u64..48 {
            let mut rng = SmallRng::seed_from_u64(0x6D1D_4001 + case);
            let n = rng.gen_range(1usize..60);
            let pts: Vec<Point2> = (0..n)
                .map(|_| Point2::new(rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0)))
                .collect();
            let center = Point2::new(rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0));
            let idx = GridIndex::build(&pts, 1.0);
            let (_, got_d) = idx.nearest(&pts, center, usize::MAX).unwrap();
            let want_d = pts
                .iter()
                .map(|p| p.distance(&center))
                .fold(f64::INFINITY, f64::min);
            assert!((got_d - want_d).abs() < 1e-9, "case {case}");
        }
    }

    #[test]
    fn triangle_inequality() {
        for case in 0u64..64 {
            let mut rng = SmallRng::seed_from_u64(0x6D1D_5001 + case);
            let mut draw = || Point2::new(rng.gen_range(-1e3..1e3), rng.gen_range(-1e3..1e3));
            let (a, b, c) = (draw(), draw(), draw());
            assert!(
                a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9,
                "case {case}"
            );
            assert!(
                (a.distance(&b) - b.distance(&a)).abs() < 1e-12,
                "case {case}"
            );
        }
    }
}
