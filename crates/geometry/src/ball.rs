//! Ball utilities: covering numbers and weighted ball masses.
//!
//! The paper's analysis is phrased in terms of balls `B(v, r)` and the
//! covering number χ(a, b) — the number of radius-`b` balls sufficient to
//! cover a radius-`a` ball. These helpers give the simulator and the
//! invariant verifiers (Lemmas 1 and 2) a shared vocabulary.

use crate::point::MetricPoint;

/// Upper estimate of the covering number χ(a, b) in a growth-dimension-γ
/// space: the number of radius-`b` balls sufficient to cover a radius-`a`
/// ball, `O((a/b)^γ)`.
///
/// For Euclidean spaces the standard volume bound `(1 + 2a/b)^γ` is used,
/// matching the paper's convention that the hidden constant is 1 up to the
/// asymptotics (Section 2).
///
/// # Panics
///
/// Panics if `a` or `b` is non-positive or non-finite.
///
/// # Example
///
/// ```
/// use sinr_geometry::covering_number;
/// // Covering a unit ball by unit balls needs one ball... bounded by (1+2)^2 in the plane.
/// assert!(covering_number(1.0, 1.0, 2.0) >= 1);
/// assert!(covering_number(4.0, 1.0, 2.0) > covering_number(2.0, 1.0, 2.0));
/// ```
pub fn covering_number(a: f64, b: f64, gamma: f64) -> usize {
    assert!(
        a.is_finite() && a > 0.0,
        "radius a must be positive, got {a}"
    );
    assert!(
        b.is_finite() && b > 0.0,
        "radius b must be positive, got {b}"
    );
    assert!(
        gamma.is_finite() && gamma > 0.0,
        "gamma must be positive, got {gamma}"
    );
    (1.0 + 2.0 * a / b).powf(gamma).ceil() as usize
}

/// Indices of all points of `points` within distance `radius` of `center`
/// (linear scan; use [`crate::GridIndex`] for repeated queries).
pub fn ball_indices<P: MetricPoint>(points: &[P], center: P, radius: f64) -> Vec<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.distance(&center) <= radius)
        .map(|(i, _)| i)
        .collect()
}

/// Number of points of `points` within distance `radius` of `center`.
pub fn count_in_ball<P: MetricPoint>(points: &[P], center: P, radius: f64) -> usize {
    points
        .iter()
        .filter(|p| p.distance(&center) <= radius)
        .count()
}

/// Sum of `weights[i]` over all points within distance `radius` of `center`.
///
/// This is the "probability mass of a ball" that Lemmas 1 and 2 of the paper
/// bound: with `weights[i] = p_i` (station transmission probabilities) it
/// computes `Σ_{w ∈ B(center, radius)} p_w`.
///
/// # Panics
///
/// Panics if `weights.len() != points.len()`.
pub fn ball_mass<P: MetricPoint>(points: &[P], weights: &[f64], center: P, radius: f64) -> f64 {
    assert_eq!(
        points.len(),
        weights.len(),
        "weights length {} must match points length {}",
        weights.len(),
        points.len()
    );
    points
        .iter()
        .zip(weights)
        .filter(|(p, _)| p.distance(&center) <= radius)
        .map(|(_, w)| *w)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;

    #[test]
    fn covering_number_monotone_in_a() {
        let mut prev = 0;
        for a in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let chi = covering_number(a, 1.0, 2.0);
            assert!(chi >= prev);
            prev = chi;
        }
    }

    #[test]
    fn covering_number_gamma_one_linear() {
        // On a line, covering [−a, a] by length-2b intervals is ~a/b.
        let chi = covering_number(10.0, 1.0, 1.0);
        assert!((10..=30).contains(&chi));
    }

    #[test]
    #[should_panic]
    fn covering_number_rejects_zero_radius() {
        let _ = covering_number(0.0, 1.0, 2.0);
    }

    #[test]
    fn ball_mass_counts_weights() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.5, 0.0),
            Point2::new(2.0, 0.0),
        ];
        let w = vec![0.25, 0.5, 4.0];
        assert_eq!(ball_mass(&pts, &w, Point2::origin(), 1.0), 0.75);
        assert_eq!(ball_mass(&pts, &w, Point2::origin(), 3.0), 4.75);
        assert_eq!(ball_mass(&pts, &w, Point2::origin(), 0.1), 0.25);
    }

    #[test]
    #[should_panic]
    fn ball_mass_length_mismatch_panics() {
        let pts = vec![Point2::origin()];
        let _ = ball_mass(&pts, &[], Point2::origin(), 1.0);
    }

    #[test]
    fn ball_indices_and_count_agree() {
        let pts: Vec<Point2> = (0..40).map(|i| Point2::new(i as f64 * 0.3, 0.0)).collect();
        for r in [0.0, 0.5, 1.0, 5.0, 100.0] {
            assert_eq!(
                ball_indices(&pts, Point2::origin(), r).len(),
                count_in_ball(&pts, Point2::origin(), r)
            );
        }
    }

    #[test]
    fn boundary_inclusive() {
        let pts = vec![Point2::new(1.0, 0.0)];
        assert_eq!(count_in_ball(&pts, Point2::origin(), 1.0), 1);
    }
}
