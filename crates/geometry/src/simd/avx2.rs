//! AVX2 f64 kernels (4 lanes), x86_64 only.
//!
//! Bit-exactness note: although the dispatch tier requires FMA (so the
//! tier label is honest about the machine class), these kernels **never
//! issue a fused multiply-add**. The scalar reference computes
//! `dx*dx + dy*dy` as two roundings (multiply, then add) and Rust does
//! not contract float expressions, so fusing here would change low bits.
//! Every lane op below — sub, mul, add, compare — is correctly rounded
//! per IEEE 754 and applied in the same association order as the scalar
//! loop, and remainder elements run the shared scalar code verbatim.

use core::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_cmp_pd, _mm256_loadu_pd, _mm256_movemask_pd, _mm256_mul_pd,
    _mm256_set1_pd, _mm256_storeu_pd, _mm256_sub_pd, _CMP_LE_OQ,
};

use super::scalar;

const LANES: usize = 4;

/// One-axis squared distance, 4 lanes at a time.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and FMA (the dispatcher
/// checks `hardware_tier()` before selecting this path).
#[target_feature(enable = "avx2,fma")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold an AVX2+FMA proof (the dispatch layer checks the cached CPUID tier).
pub(super) unsafe fn distance_sq_1(xs: &[f64], cx: f64, out: &mut [f64]) {
    let n = xs.len();
    let chunks = n / LANES * LANES;
    // SAFETY: all loads/stores below read/write `LANES` f64s starting at
    // `i <= chunks - LANES`, in bounds of `xs`/`out` (both length `n`);
    // `loadu`/`storeu` have no alignment requirement.
    unsafe {
        let cxv = _mm256_set1_pd(cx);
        let mut i = 0;
        while i < chunks {
            let x = _mm256_loadu_pd(xs.as_ptr().add(i));
            let dx = _mm256_sub_pd(x, cxv);
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_mul_pd(dx, dx));
            i += LANES;
        }
    }
    scalar::distance_sq_1(&xs[chunks..], cx, &mut out[chunks..]);
}

/// Two-axis squared distance; the add keeps the scalar association
/// order `dx·dx + dy·dy`.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold an AVX2+FMA proof (the dispatch layer checks the cached CPUID tier).
pub(super) unsafe fn distance_sq_2(xs: &[f64], ys: &[f64], cx: f64, cy: f64, out: &mut [f64]) {
    let n = xs.len();
    let chunks = n / LANES * LANES;
    // SAFETY: `xs`, `ys` and `out` all have length `n`; every load/store
    // touches `LANES` f64s at `i <= chunks - LANES`, in bounds; unaligned
    // intrinsics are used throughout.
    unsafe {
        let cxv = _mm256_set1_pd(cx);
        let cyv = _mm256_set1_pd(cy);
        let mut i = 0;
        while i < chunks {
            let dx = _mm256_sub_pd(_mm256_loadu_pd(xs.as_ptr().add(i)), cxv);
            let dy = _mm256_sub_pd(_mm256_loadu_pd(ys.as_ptr().add(i)), cyv);
            // No FMA: mul, mul, add — the scalar rounding sequence.
            let sum = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), sum);
            i += LANES;
        }
    }
    scalar::distance_sq_2(&xs[chunks..], &ys[chunks..], cx, cy, &mut out[chunks..]);
}

/// Three-axis squared distance, association `(dx² + dy²) + dz²`.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold an AVX2+FMA proof (the dispatch layer checks the cached CPUID tier).
pub(super) unsafe fn distance_sq_3(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    cx: f64,
    cy: f64,
    cz: f64,
    out: &mut [f64],
) {
    let n = xs.len();
    let chunks = n / LANES * LANES;
    // SAFETY: `xs`, `ys`, `zs` and `out` all have length `n`; every
    // load/store touches `LANES` f64s at `i <= chunks - LANES`, in
    // bounds; unaligned intrinsics are used throughout.
    unsafe {
        let cxv = _mm256_set1_pd(cx);
        let cyv = _mm256_set1_pd(cy);
        let czv = _mm256_set1_pd(cz);
        let mut i = 0;
        while i < chunks {
            let dx = _mm256_sub_pd(_mm256_loadu_pd(xs.as_ptr().add(i)), cxv);
            let dy = _mm256_sub_pd(_mm256_loadu_pd(ys.as_ptr().add(i)), cyv);
            let dz = _mm256_sub_pd(_mm256_loadu_pd(zs.as_ptr().add(i)), czv);
            let sum = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                _mm256_mul_pd(dz, dz),
            );
            _mm256_storeu_pd(out.as_mut_ptr().add(i), sum);
            i += LANES;
        }
    }
    scalar::distance_sq_3(
        &xs[chunks..],
        &ys[chunks..],
        &zs[chunks..],
        cx,
        cy,
        cz,
        &mut out[chunks..],
    );
}

/// Bit `i` set iff `vals[i] <= bound`. `_CMP_LE_OQ` is ordered-quiet:
/// NaN compares false, exactly like the scalar `<=`.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and FMA. `vals.len() <= 64`.
#[target_feature(enable = "avx2,fma")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold an AVX2+FMA proof (the dispatch layer checks the cached CPUID tier).
pub(super) unsafe fn le_mask(vals: &[f64], bound: f64) -> u64 {
    debug_assert!(vals.len() <= 64);
    let n = vals.len();
    let chunks = n / LANES * LANES;
    let mut mask = 0u64;
    // SAFETY: each load reads `LANES` f64s at `i <= chunks - LANES`,
    // in bounds of `vals`; `movemask` extracts lane sign bits into the
    // low 4 bits, shifted to the lane's element index (< 64).
    unsafe {
        let bv = _mm256_set1_pd(bound);
        let mut i = 0;
        while i < chunks {
            let v: __m256d = _mm256_loadu_pd(vals.as_ptr().add(i));
            let le = _mm256_cmp_pd::<_CMP_LE_OQ>(v, bv);
            mask |= (_mm256_movemask_pd(le) as u64) << i;
            i += LANES;
        }
    }
    if chunks < n {
        mask |= scalar::le_mask(&vals[chunks..], bound) << chunks;
    }
    mask
}
