//! Runtime-dispatched explicit SIMD for the batched distance kernels.
//!
//! The SoA hot path ([`crate::PositionStore::distance_sq_batch`] and the
//! radius tests behind [`crate::GridIndex::for_each_in_ball`]) has relied
//! on LLVM autovectorization; this module makes the vector shape explicit
//! and dispatches it at runtime, without weakening the workspace's
//! bitwise-determinism guarantee.
//!
//! # Dispatch table
//!
//! | Target | Detected tier | f64 lanes | Kernel module |
//! |---|---|---|---|
//! | `x86_64` with AVX2 **and** FMA | [`SimdTier::Avx2Fma`] (`avx2+fma`) | 4 | `simd::avx2` |
//! | `aarch64` (NEON is baseline)   | [`SimdTier::Neon`] (`neon`)       | 2 | `simd::neon` |
//! | everything else                | [`SimdTier::Scalar`] (`scalar`)   | 1 | scalar loops |
//!
//! Feature detection runs **once** per process (cached in a `OnceLock`);
//! setting the environment variable `SINR_KERNELS=scalar` before the
//! first kernel call forces the scalar tier process-wide (the CI leg that
//! keeps the reference path exercised). A per-run override rides on
//! [`KernelDispatch`], which the reception oracle and the `Scenario`
//! builder plumb through so a single run can force `Scalar` for
//! differential testing without touching the environment.
//!
//! # Bit-exactness contract
//!
//! Every SIMD kernel here is an **element-wise map** restricted to lane
//! operations that IEEE 754 defines as correctly rounded — multiply, add,
//! subtract, divide, square root — plus `max` with operand order matching
//! `f64::max`. No reduction is vectorized and the remainder elements go
//! through the very same scalar code the `Scalar` tier runs, so each
//! output element is **bit-identical** to the scalar path. This is pinned
//! by `tests/simd_equivalence.rs` across deployment families, axis
//! counts, batch lengths around the lane width, and the clamp boundary.
//!
//! The radius test is vectorized without its per-candidate `sqrt`:
//! [`radius_criterion`] precomputes the largest squared distance whose
//! correctly-rounded root still passes, so the lane test collapses to an
//! exact comparison (see that function's docs for the equivalence proof).

use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2;
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon;

/// The kernel implementation class the running CPU supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    /// x86_64 with AVX2 and FMA available: 4 × f64 lanes.
    Avx2Fma,
    /// aarch64 NEON: 2 × f64 lanes.
    Neon,
    /// Portable scalar loops (also the forced reference path).
    Scalar,
}

impl SimdTier {
    /// The stable label used in bench metadata (`BENCH.json` rows) and
    /// diagnostics: `avx2+fma`, `neon` or `scalar`.
    pub fn label(self) -> &'static str {
        match self {
            SimdTier::Avx2Fma => "avx2+fma",
            SimdTier::Neon => "neon",
            SimdTier::Scalar => "scalar",
        }
    }

    /// Number of f64 lanes per vector register at this tier (1 for
    /// scalar) — the granularity `tests/simd_equivalence.rs` probes
    /// batch lengths around.
    pub fn f64_lanes(self) -> usize {
        match self {
            SimdTier::Avx2Fma => 4,
            SimdTier::Neon => 2,
            SimdTier::Scalar => 1,
        }
    }
}

/// Per-run kernel dispatch override, plumbed through the reception
/// oracle and the `Scenario` builder.
///
/// `Auto` resolves to the cached hardware tier (honoring the
/// `SINR_KERNELS=scalar` environment override); `ForceScalar` pins the
/// scalar reference path for this run only — the differential-testing
/// hook, since both paths are bit-identical by contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelDispatch {
    /// Use the best tier the CPU supports (the default).
    #[default]
    Auto,
    /// Run the scalar reference kernels regardless of the CPU.
    ForceScalar,
}

impl KernelDispatch {
    /// The tier this dispatch actually runs on this machine/process.
    pub fn resolve(self) -> SimdTier {
        match self {
            KernelDispatch::Auto => auto_tier(),
            KernelDispatch::ForceScalar => SimdTier::Scalar,
        }
    }

    /// Stable wire/diagnostic label: `auto` or `scalar`.
    pub fn label(self) -> &'static str {
        match self {
            KernelDispatch::Auto => "auto",
            KernelDispatch::ForceScalar => "scalar",
        }
    }
}

/// The tier the hardware supports, ignoring any environment override —
/// what bench metadata records as the machine's feature tier. Detection
/// runs once and is cached for the life of the process.
pub fn hardware_tier() -> SimdTier {
    static HW: OnceLock<SimdTier> = OnceLock::new();
    *HW.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdTier::Avx2Fma;
            }
            SimdTier::Scalar
        }
        #[cfg(target_arch = "aarch64")]
        {
            // NEON (Advanced SIMD) is mandatory in the aarch64 baseline.
            SimdTier::Neon
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            SimdTier::Scalar
        }
    })
}

/// The tier [`KernelDispatch::Auto`] resolves to: the hardware tier,
/// unless `SINR_KERNELS=scalar` was set when the first kernel ran (read
/// once and cached — the override cannot change mid-process, so results
/// stay a pure function of the seed and the process environment).
pub fn auto_tier() -> SimdTier {
    static AUTO: OnceLock<SimdTier> = OnceLock::new();
    *AUTO.get_or_init(|| {
        if std::env::var_os("SINR_KERNELS").is_some_and(|v| v == *"scalar") {
            SimdTier::Scalar
        } else {
            hardware_tier()
        }
    })
}

/// The largest squared distance whose **correctly-rounded** square root
/// is still `<= radius` — the lane-precomputed criterion behind
/// [`crate::PositionStore::for_each_within_sq`].
///
/// Equivalence proof: `x ↦ x.sqrt()` is monotone non-decreasing on
/// `[0, +∞]` (the exact root is strictly monotone and round-to-nearest
/// is monotone), so the predicate `x.sqrt() <= radius` is downward
/// closed in `x`. This function binary-searches the non-negative f64 bit
/// patterns — whose integer order equals their numeric order — for the
/// greatest `x` satisfying it, hence for every non-NaN `d2 >= 0`:
/// `d2 <= radius_criterion(radius)` ⇔ `d2.sqrt() <= radius`, **bitwise
/// the same decision** at every boundary (pinned exhaustively around the
/// criterion in `tests/simd_equivalence.rs`). NaN distances fail both
/// tests. Note `d2 <= radius * radius` is *not* equivalent: when
/// `radius²` rounds down, squared distances just above the rounded
/// product can still root to `<= radius`.
///
/// A non-finite or negative `radius` yields `-∞` (nothing passes, like
/// the NaN-propagating scalar test); `+∞` passes everything non-NaN.
pub fn radius_criterion(radius: f64) -> f64 {
    if radius.is_nan() || radius < 0.0 {
        // NaN or negative: `d2.sqrt() <= radius` is false for every d2.
        return f64::NEG_INFINITY;
    }
    if radius == f64::INFINITY {
        return f64::INFINITY;
    }
    // Invariant: pred(lo) holds, pred(hi) fails. Non-negative f64 bit
    // patterns sort numerically, and every pattern in [0, inf_bits) is a
    // finite number (NaNs sit strictly above the infinity pattern), so
    // each probe is a valid float. ~63 sqrt probes, once per ball query.
    let mut lo: u64 = 0; // 0.0f64.sqrt() == 0.0 <= radius
    let mut hi: u64 = f64::INFINITY.to_bits(); // inf.sqrt() == inf > radius
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if f64::from_bits(mid).sqrt() <= radius {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    f64::from_bits(lo)
}

/// Scalar reference kernels — the `Scalar` tier, and the remainder path
/// of every vector tier. These are the exact loops
/// [`crate::PositionStore::distance_sq_batch`] historically ran.
pub(crate) mod scalar {
    /// `out[i] = (xs[i] - cx)²`.
    pub fn distance_sq_1(xs: &[f64], cx: f64, out: &mut [f64]) {
        for (o, &x) in out.iter_mut().zip(xs) {
            let dx = x - cx;
            *o = dx * dx;
        }
    }

    /// `out[i] = (xs[i] - cx)² + (ys[i] - cy)²`, added in axis order.
    pub fn distance_sq_2(xs: &[f64], ys: &[f64], cx: f64, cy: f64, out: &mut [f64]) {
        for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
            let dx = x - cx;
            let dy = y - cy;
            *o = dx * dx + dy * dy;
        }
    }

    /// Three-axis squared distance, added in axis order.
    #[allow(clippy::too_many_arguments)]
    pub fn distance_sq_3(
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        cx: f64,
        cy: f64,
        cz: f64,
        out: &mut [f64],
    ) {
        for (((o, &x), &y), &z) in out.iter_mut().zip(xs).zip(ys).zip(zs) {
            let dx = x - cx;
            let dy = y - cy;
            let dz = z - cz;
            *o = dx * dx + dy * dy + dz * dz;
        }
    }

    /// Bit `i` of the result is set iff `vals[i] <= bound` (NaN fails).
    pub fn le_mask(vals: &[f64], bound: f64) -> u64 {
        debug_assert!(vals.len() <= 64);
        let mut mask = 0u64;
        for (i, &v) in vals.iter().enumerate() {
            if v <= bound {
                mask |= 1u64 << i;
            }
        }
        mask
    }
}

/// Dispatched one-axis squared distance: `out[i] = (xs[i] - cx)²`.
#[allow(unsafe_code)]
pub(crate) fn distance_sq_1(xs: &[f64], cx: f64, out: &mut [f64], tier: SimdTier) {
    debug_assert_eq!(xs.len(), out.len());
    match tier {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier == Avx2Fma` only when `hardware_tier()` detected
        // AVX2 and FMA on this CPU, the features the callee enables.
        SimdTier::Avx2Fma => unsafe { avx2::distance_sq_1(xs, cx, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64, the feature the callee enables.
        SimdTier::Neon => unsafe { neon::distance_sq_1(xs, cx, out) },
        _ => scalar::distance_sq_1(xs, cx, out),
    }
}

/// Dispatched two-axis squared distance (axis-order association).
#[allow(unsafe_code)]
pub(crate) fn distance_sq_2(
    xs: &[f64],
    ys: &[f64],
    cx: f64,
    cy: f64,
    out: &mut [f64],
    tier: SimdTier,
) {
    debug_assert_eq!(xs.len(), out.len());
    debug_assert_eq!(ys.len(), out.len());
    match tier {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier == Avx2Fma` only when `hardware_tier()` detected
        // AVX2 and FMA on this CPU, the features the callee enables.
        SimdTier::Avx2Fma => unsafe { avx2::distance_sq_2(xs, ys, cx, cy, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64, the feature the callee enables.
        SimdTier::Neon => unsafe { neon::distance_sq_2(xs, ys, cx, cy, out) },
        _ => scalar::distance_sq_2(xs, ys, cx, cy, out),
    }
}

/// Dispatched three-axis squared distance (axis-order association).
#[allow(clippy::too_many_arguments)]
#[allow(unsafe_code)]
pub(crate) fn distance_sq_3(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    cx: f64,
    cy: f64,
    cz: f64,
    out: &mut [f64],
    tier: SimdTier,
) {
    debug_assert_eq!(xs.len(), out.len());
    debug_assert_eq!(ys.len(), out.len());
    debug_assert_eq!(zs.len(), out.len());
    match tier {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier == Avx2Fma` only when `hardware_tier()` detected
        // AVX2 and FMA on this CPU, the features the callee enables.
        SimdTier::Avx2Fma => unsafe { avx2::distance_sq_3(xs, ys, zs, cx, cy, cz, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64, the feature the callee enables.
        SimdTier::Neon => unsafe { neon::distance_sq_3(xs, ys, zs, cx, cy, cz, out) },
        _ => scalar::distance_sq_3(xs, ys, zs, cx, cy, cz, out),
    }
}

/// Dispatched radius-test inner loop: bit `i` set iff `vals[i] <= bound`
/// (an exact comparison — identical decisions at every tier). `vals` is
/// at most one 64-element chunk.
#[allow(unsafe_code)]
pub(crate) fn le_mask(vals: &[f64], bound: f64, tier: SimdTier) -> u64 {
    debug_assert!(vals.len() <= 64);
    match tier {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `tier == Avx2Fma` only when `hardware_tier()` detected
        // AVX2 and FMA on this CPU, the features the callee enables.
        SimdTier::Avx2Fma => unsafe { avx2::le_mask(vals, bound) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64, the feature the callee enables.
        SimdTier::Neon => unsafe { neon::le_mask(vals, bound) },
        _ => scalar::le_mask(vals, bound),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_lanes_are_stable() {
        assert_eq!(SimdTier::Avx2Fma.label(), "avx2+fma");
        assert_eq!(SimdTier::Neon.label(), "neon");
        assert_eq!(SimdTier::Scalar.label(), "scalar");
        assert_eq!(SimdTier::Avx2Fma.f64_lanes(), 4);
        assert_eq!(SimdTier::Neon.f64_lanes(), 2);
        assert_eq!(SimdTier::Scalar.f64_lanes(), 1);
        assert_eq!(KernelDispatch::Auto.label(), "auto");
        assert_eq!(KernelDispatch::ForceScalar.label(), "scalar");
    }

    #[test]
    fn force_scalar_resolves_to_scalar_everywhere() {
        assert_eq!(KernelDispatch::ForceScalar.resolve(), SimdTier::Scalar);
        // Auto resolves to the cached tier; both calls agree.
        assert_eq!(KernelDispatch::Auto.resolve(), auto_tier());
    }

    #[test]
    fn detected_tiers_are_cached_and_consistent() {
        assert_eq!(hardware_tier(), hardware_tier());
        assert_eq!(auto_tier(), auto_tier());
        // The env override can only narrow to scalar, never invent a tier.
        assert!(auto_tier() == hardware_tier() || auto_tier() == SimdTier::Scalar);
    }

    #[test]
    fn vector_tiers_match_scalar_bitwise() {
        let tier = auto_tier();
        let n = 4 * tier.f64_lanes() + 3;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i as f64 * 0.59).cos() * 5.0).collect();
        let zs: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let (cx, cy, cz) = (0.21, -0.7, 3.1);
        for len in [
            0,
            1,
            tier.f64_lanes() - 1,
            tier.f64_lanes(),
            tier.f64_lanes() + 1,
            n,
        ] {
            let mut want = vec![0.0; len];
            let mut got = vec![0.0; len];
            scalar::distance_sq_1(&xs[..len], cx, &mut want);
            distance_sq_1(&xs[..len], cx, &mut got, tier);
            assert_eq!(bits(&want), bits(&got), "axis 1, len {len}");
            scalar::distance_sq_2(&xs[..len], &ys[..len], cx, cy, &mut want);
            distance_sq_2(&xs[..len], &ys[..len], cx, cy, &mut got, tier);
            assert_eq!(bits(&want), bits(&got), "axis 2, len {len}");
            scalar::distance_sq_3(&xs[..len], &ys[..len], &zs[..len], cx, cy, cz, &mut want);
            distance_sq_3(
                &xs[..len],
                &ys[..len],
                &zs[..len],
                cx,
                cy,
                cz,
                &mut got,
                tier,
            );
            assert_eq!(bits(&want), bits(&got), "axis 3, len {len}");
            let bound = 9.0;
            assert_eq!(
                scalar::le_mask(&want[..len], bound),
                le_mask(&want[..len], bound, tier),
                "mask, len {len}"
            );
        }
    }

    #[test]
    fn radius_criterion_is_the_exact_boundary() {
        for radius in [0.0, 1e-9, 0.5, 1.0, 2.0, 1e9, 1e154, 1e200] {
            let crit = radius_criterion(radius);
            assert!(crit.sqrt() <= radius, "criterion passes at r={radius}");
            let above = f64::from_bits(crit.to_bits() + 1);
            assert!(
                above.sqrt() > radius,
                "next float above criterion fails at r={radius}"
            );
        }
        assert_eq!(radius_criterion(f64::INFINITY), f64::INFINITY);
        assert_eq!(radius_criterion(-1.0), f64::NEG_INFINITY);
        assert_eq!(radius_criterion(f64::NAN), f64::NEG_INFINITY);
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }
}
