//! NEON f64 kernels (2 lanes), aarch64 only.
//!
//! Same contract as the AVX2 module: sub/mul/add only (no fused
//! multiply-add — `vfmaq_f64` would change low bits vs the scalar
//! two-rounding sequence), scalar association order, and remainder
//! elements through the shared scalar code. `vcleq_f64` compares
//! NaN as false, matching the scalar `<=`.

use core::arch::aarch64::{
    vaddq_f64, vcleq_f64, vdupq_n_f64, vgetq_lane_u64, vld1q_f64, vmulq_f64, vst1q_f64, vsubq_f64,
};

use super::scalar;

const LANES: usize = 2;

/// One-axis squared distance, 2 lanes at a time.
///
/// # Safety
///
/// NEON is baseline on aarch64; caller reaches this only via the
/// dispatcher on that target.
#[target_feature(enable = "neon")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold a NEON proof (the dispatch layer checks the cached detection tier).
pub(super) unsafe fn distance_sq_1(xs: &[f64], cx: f64, out: &mut [f64]) {
    let n = xs.len();
    let chunks = n / LANES * LANES;
    // SAFETY: all loads/stores touch `LANES` f64s at `i <= chunks -
    // LANES`, in bounds of `xs`/`out` (both length `n`).
    unsafe {
        let cxv = vdupq_n_f64(cx);
        let mut i = 0;
        while i < chunks {
            let dx = vsubq_f64(vld1q_f64(xs.as_ptr().add(i)), cxv);
            vst1q_f64(out.as_mut_ptr().add(i), vmulq_f64(dx, dx));
            i += LANES;
        }
    }
    scalar::distance_sq_1(&xs[chunks..], cx, &mut out[chunks..]);
}

/// Two-axis squared distance, association `dx·dx + dy·dy`.
///
/// # Safety
///
/// NEON is baseline on aarch64; reached only via the dispatcher.
#[target_feature(enable = "neon")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold a NEON proof (the dispatch layer checks the cached detection tier).
pub(super) unsafe fn distance_sq_2(xs: &[f64], ys: &[f64], cx: f64, cy: f64, out: &mut [f64]) {
    let n = xs.len();
    let chunks = n / LANES * LANES;
    // SAFETY: `xs`, `ys`, `out` all have length `n`; every load/store
    // touches `LANES` f64s at `i <= chunks - LANES`, in bounds.
    unsafe {
        let cxv = vdupq_n_f64(cx);
        let cyv = vdupq_n_f64(cy);
        let mut i = 0;
        while i < chunks {
            let dx = vsubq_f64(vld1q_f64(xs.as_ptr().add(i)), cxv);
            let dy = vsubq_f64(vld1q_f64(ys.as_ptr().add(i)), cyv);
            let sum = vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy));
            vst1q_f64(out.as_mut_ptr().add(i), sum);
            i += LANES;
        }
    }
    scalar::distance_sq_2(&xs[chunks..], &ys[chunks..], cx, cy, &mut out[chunks..]);
}

/// Three-axis squared distance, association `(dx² + dy²) + dz²`.
///
/// # Safety
///
/// NEON is baseline on aarch64; reached only via the dispatcher.
#[target_feature(enable = "neon")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold a NEON proof (the dispatch layer checks the cached detection tier).
pub(super) unsafe fn distance_sq_3(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    cx: f64,
    cy: f64,
    cz: f64,
    out: &mut [f64],
) {
    let n = xs.len();
    let chunks = n / LANES * LANES;
    // SAFETY: `xs`, `ys`, `zs`, `out` all have length `n`; every
    // load/store touches `LANES` f64s at `i <= chunks - LANES`, in bounds.
    unsafe {
        let cxv = vdupq_n_f64(cx);
        let cyv = vdupq_n_f64(cy);
        let czv = vdupq_n_f64(cz);
        let mut i = 0;
        while i < chunks {
            let dx = vsubq_f64(vld1q_f64(xs.as_ptr().add(i)), cxv);
            let dy = vsubq_f64(vld1q_f64(ys.as_ptr().add(i)), cyv);
            let dz = vsubq_f64(vld1q_f64(zs.as_ptr().add(i)), czv);
            let sum = vaddq_f64(
                vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy)),
                vmulq_f64(dz, dz),
            );
            vst1q_f64(out.as_mut_ptr().add(i), sum);
            i += LANES;
        }
    }
    scalar::distance_sq_3(
        &xs[chunks..],
        &ys[chunks..],
        &zs[chunks..],
        cx,
        cy,
        cz,
        &mut out[chunks..],
    );
}

/// Bit `i` set iff `vals[i] <= bound` (NaN fails, like scalar `<=`).
///
/// # Safety
///
/// NEON is baseline on aarch64; reached only via the dispatcher.
/// `vals.len() <= 64`.
#[target_feature(enable = "neon")]
// SAFETY: `unsafe fn` only because of `#[target_feature]`; callers must
// hold a NEON proof (the dispatch layer checks the cached detection tier).
pub(super) unsafe fn le_mask(vals: &[f64], bound: f64) -> u64 {
    debug_assert!(vals.len() <= 64);
    let n = vals.len();
    let chunks = n / LANES * LANES;
    let mut mask = 0u64;
    // SAFETY: each load reads `LANES` f64s at `i <= chunks - LANES`, in
    // bounds of `vals`; `vcleq_f64` yields all-ones/all-zeros lanes whose
    // low bit is extracted per lane.
    unsafe {
        let bv = vdupq_n_f64(bound);
        let mut i = 0;
        while i < chunks {
            let le = vcleq_f64(vld1q_f64(vals.as_ptr().add(i)), bv);
            mask |= (vgetq_lane_u64::<0>(le) & 1) << i;
            mask |= (vgetq_lane_u64::<1>(le) & 1) << (i + 1);
            i += LANES;
        }
    }
    if chunks < n {
        mask |= scalar::le_mask(&vals[chunks..], bound) << chunks;
    }
    mask
}
