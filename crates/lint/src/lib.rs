//! `sinr-lint`: in-tree static analysis for the workspace's determinism
//! and invariant rules.
//!
//! The workspace's load-bearing guarantee is that a `RunReport` is a pure
//! function of its seed — byte-identical at any physics-thread count,
//! under mobility and churn. The test suite pins that *dynamically*
//! (differential and golden tests); this crate enforces the source-level
//! discipline that makes the property hold, so the next `HashMap`-ordered
//! floating-point sum is caught in review rather than bisected out of a
//! flaky golden pin. Rules (see [`rules::Rule`] and the root `README.md`):
//!
//! 1. **unordered-collections** — no `HashMap`/`HashSet` in non-test code
//!    of the deterministic crates; iteration order randomises FP sums.
//! 2. **forbid-unsafe** — every library crate root carries
//!    `#![forbid(unsafe_code)]` (SIMD-owning crates may relax to
//!    `#![deny(unsafe_code)]`); `unsafe` is only permitted under the
//!    configured SIMD allowlist paths, always with `// SAFETY:`, and the
//!    per-crate token counts ride the `[unsafe-blocks]` ratchet.
//! 3. **wall-clock** — kernels never read clocks; timing belongs to bench.
//! 4. **parallelism-resolver** — one `available_parallelism` call site.
//! 5. **quiet-libraries** — libraries return data, binaries print.
//! 6. **panic-ratchet** — `unwrap()`/`expect(` ceilings per hot crate,
//!    committed in `lint-ratchet.toml`, monotonically shrinking.
//!
//! Any finding of rules 1–5 can be suppressed at its site with
//! `// lint: allow(<rule>) -- <reason>` on the same or preceding line;
//! the reason is mandatory and unused suppressions are themselves flagged.
//!
//! Dependency-free by design (the build container has no registry): the
//! token scanner in [`lexer`] correctly skips strings, raw strings, char
//! literals, and (nested) comments, so rule matching never fires on text.
//! Known limitation: `#[cfg(test)]` detection is token-based — an
//! attribute mixing `test` with `not(...)` in unusual shapes may be
//! misclassified; the workspace uses only plain `#[cfg(test)]`.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod ratchet;
pub mod rules;
pub mod workspace;

use std::path::Path;

pub use ratchet::{Drift, Ratchet, RATCHET_FILE};
pub use rules::{check_files, CheckResult, Config, Diagnostic, Rule};
pub use workspace::{SourceFile, Workspace};

/// Everything `--check` produces: rule diagnostics (ratchet violations
/// included) plus non-failing ratchet improvements.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All failures, sorted by path/line/rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Crates whose panic surface shrank below the committed ceiling —
    /// not a failure, but the baseline should be lowered.
    pub improvements: Vec<Drift>,
    /// Measured `unwrap()`/`expect(` counts per hot crate.
    pub panic_counts: std::collections::BTreeMap<String, u64>,
    /// Measured `unsafe` token counts per SIMD-owning crate.
    pub unsafe_counts: std::collections::BTreeMap<String, u64>,
}

impl LintReport {
    /// True when `--check` should exit 0.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints an in-memory file set against `cfg` and a parsed ratchet
/// baseline (`None` = baseline file missing, which is itself a failure
/// when any hot crate is present).
pub fn lint_files(files: &[SourceFile], cfg: &Config, baseline: Option<&Ratchet>) -> LintReport {
    let result = check_files(files, cfg);
    let mut diagnostics = result.diagnostics;
    let mut improvements = Vec::new();
    match baseline {
        Some(b) => {
            let (violations, drifts) = b.compare(&result.panic_counts);
            diagnostics.extend(violations);
            improvements = drifts;
            let (violations, drifts) = b.compare_unsafe(&result.unsafe_counts);
            diagnostics.extend(violations);
            improvements.extend(drifts);
        }
        None if !result.panic_counts.is_empty() => diagnostics.push(Diagnostic {
            path: RATCHET_FILE.to_string(),
            line: 1,
            rule: Rule::PanicRatchet,
            message: format!("missing `{RATCHET_FILE}` baseline; run `sinr-lint --ratchet-update`"),
        }),
        None => {}
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    LintReport {
        diagnostics,
        improvements,
        panic_counts: result.panic_counts,
        unsafe_counts: result.unsafe_counts,
    }
}

/// Loads the workspace under `root` and lints it, reading the ratchet
/// baseline from `<root>/lint-ratchet.toml` if present.
///
/// # Errors
///
/// Returns a printable message on filesystem errors or an unparsable
/// baseline file.
pub fn lint_root(root: &Path, cfg: &Config) -> Result<LintReport, String> {
    let ws = Workspace::load(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let baseline_path = root.join(RATCHET_FILE);
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Some(Ratchet::parse(&text)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };
    Ok(lint_files(&ws.files, cfg, baseline.as_ref()))
}
