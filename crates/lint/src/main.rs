//! CLI for `sinr-lint`. See the library docs for the rule catalogue.
//!
//! ```text
//! sinr-lint [--check] [--ratchet-update] [--root <dir>]
//! ```
//!
//! * default / `--check`: print `file:line: [rule] message` diagnostics,
//!   exit 1 if any, 0 when clean (CI mode);
//! * `--ratchet-update`: rewrite `lint-ratchet.toml` to the measured
//!   panic-surface and unsafe-blocks counts (the explicit way to lower —
//!   or, loudly, raise — the ceilings);
//! * `--root <dir>`: workspace root to lint (default: current directory).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use sinr_lint::{lint_root, Config, Ratchet, Workspace, RATCHET_FILE};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--ratchet-update" => update = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                println!("sinr-lint [--check] [--ratchet-update] [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let cfg = Config::default();
    if update {
        return ratchet_update(&root, &cfg);
    }

    match lint_root(&root, &cfg) {
        Ok(report) => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            for drift in &report.improvements {
                println!(
                    "note: [{}] surface of `{}` shrank ({} -> {}); lower the ceiling \
                     with `sinr-lint --ratchet-update`",
                    drift.table, drift.krate, drift.baseline, drift.actual
                );
            }
            if report.is_clean() {
                println!(
                    "sinr-lint: clean ({} hot-crate panic sites within ratchet)",
                    report.panic_counts.values().sum::<u64>()
                );
                ExitCode::SUCCESS
            } else {
                println!("sinr-lint: {} violation(s)", report.diagnostics.len());
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("sinr-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn ratchet_update(root: &std::path::Path, cfg: &Config) -> ExitCode {
    let ws = match Workspace::load(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("sinr-lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let result = sinr_lint::check_files(&ws.files, cfg);
    let measured = result.panic_counts;
    let path = root.join(RATCHET_FILE);
    let old = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| Ratchet::parse(&t).ok());
    let new = Ratchet {
        counts: measured.clone(),
        unsafe_counts: result.unsafe_counts.clone(),
    };
    if let Err(e) = std::fs::write(&path, new.render()) {
        eprintln!("sinr-lint: writing {}: {e}", path.display());
        return ExitCode::from(2);
    }
    for (krate, count) in &measured {
        let before = old.as_ref().and_then(|o| o.counts.get(krate).copied());
        match before {
            Some(b) if *count > b => println!(
                "warning: ceiling for `{krate}` RAISED {b} -> {count}; the ratchet is \
                 meant to shrink — justify this in review"
            ),
            Some(b) if *count < b => println!("lowered `{krate}`: {b} -> {count}"),
            Some(_) => println!("unchanged `{krate}`: {count}"),
            None => println!("added `{krate}`: {count}"),
        }
    }
    for (krate, count) in &result.unsafe_counts {
        let before = old
            .as_ref()
            .and_then(|o| o.unsafe_counts.get(krate).copied());
        match before {
            Some(b) if *count > b => println!(
                "warning: unsafe-blocks ceiling for `{krate}` RAISED {b} -> {count}; \
                 justify the new unsafe surface in review"
            ),
            Some(b) if *count < b => println!("lowered unsafe-blocks `{krate}`: {b} -> {count}"),
            Some(_) => println!("unchanged unsafe-blocks `{krate}`: {count}"),
            None => println!("added unsafe-blocks `{krate}`: {count}"),
        }
    }
    println!("wrote {}", path.display());
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("sinr-lint: {msg}\nusage: sinr-lint [--check] [--ratchet-update] [--root <dir>]");
    ExitCode::from(2)
}
