//! A lightweight Rust lexer: just enough tokenisation to lint safely.
//!
//! The rules in [`crate::rules`] match on *identifier tokens*, so a
//! `HashMap` inside a string literal, raw string, char literal, or comment
//! must never reach them. This lexer handles exactly those constructs —
//! plus the places where naive scanners go wrong in Rust:
//!
//! * nested block comments (`/* /* */ */`);
//! * raw strings with arbitrary hash fences (`r##"…"##`), including byte
//!   (`br"…"`) and C (`cr"…"`) variants;
//! * lifetimes vs char literals (`'a,` is a lifetime, `'a'` is a char);
//! * raw identifiers (`r#match`) vs raw strings (`r#"…"#`).
//!
//! Comments are *kept* as tokens: suppression annotations
//! (`// lint: allow(rule) -- reason`) and `// SAFETY:` justifications live
//! in them.

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind (identifiers and comments carry their text).
    pub kind: TokenKind,
    /// 1-based source line of the token's first character.
    pub line: usize,
}

/// The token classes the rules need; literals are lexed (so their contents
/// cannot leak into other tokens) but carry no payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, e.g. `HashMap`, `unsafe`, `r#match` (the
    /// `r#` prefix is stripped).
    Ident(String),
    /// Single punctuation character, e.g. `:`, `!`, `(`.
    Punct(char),
    /// Comment text including its delimiters; `//…` or `/*…*/`.
    Comment(String),
    /// String/char/byte/numeric literal (payload dropped).
    Literal,
}

impl Token {
    /// The identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The punctuation char, if this is a punct token.
    pub fn punct(&self) -> Option<char> {
        match &self.kind {
            TokenKind::Punct(c) => Some(*c),
            _ => None,
        }
    }

    /// The comment text, if this is a comment token.
    pub fn comment(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Comment(s) => Some(s),
            _ => None,
        }
    }
}

/// Lexes `src` into tokens. Never fails: unterminated constructs consume
/// the rest of the input (matching how rustc recovers), which is safe for
/// a linter — worst case a malformed file under-reports.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_literal(line),
                '\'' => self.quote(line),
                'r' | 'b' | 'c' => {
                    if !self.raw_or_byte_prefix() {
                        self.ident(line);
                    }
                }
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                c => {
                    self.out.push(Token {
                        kind: TokenKind::Punct(c),
                        line,
                    });
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn line_comment(&mut self, line: usize) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.push(Token {
            kind: TokenKind::Comment(text),
            line,
        });
    }

    fn block_comment(&mut self, line: usize) {
        let start = self.pos;
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: swallow to EOF
            }
        }
        let text: String = self.chars[start..self.pos.min(self.chars.len())]
            .iter()
            .collect();
        self.out.push(Token {
            kind: TokenKind::Comment(text),
            line,
        });
    }

    /// `"…"` with escapes.
    fn string_literal(&mut self, line: usize) {
        self.pos += 1; // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.out.push(Token {
            kind: TokenKind::Literal,
            line,
        });
    }

    /// `'` starts either a lifetime (`'a`, `'static`) or a char literal
    /// (`'x'`, `'\n'`, `'\u{1F600}'`). Disambiguation: `'ident` NOT
    /// followed by a closing `'` is a lifetime.
    fn quote(&mut self, line: usize) {
        if let Some(c1) = self.peek(1) {
            if is_ident_start(c1) {
                // Scan the identifier run after the quote.
                let mut end = self.pos + 2;
                while self.chars.get(end).is_some_and(|&c| is_ident_continue(c)) {
                    end += 1;
                }
                if self.chars.get(end) != Some(&'\'') {
                    // Lifetime: emit as punct + ident so rules never see a
                    // phantom literal; the ident is harmless.
                    self.out.push(Token {
                        kind: TokenKind::Punct('\''),
                        line,
                    });
                    self.pos += 1;
                    return;
                }
            }
        }
        // Char literal.
        self.pos += 1; // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.out.push(Token {
            kind: TokenKind::Literal,
            line,
        });
    }

    /// Handles `r"…"`, `r#"…"#`, `br"…"`, `cr#"…"#`, `b"…"`, `b'x'`, and
    /// raw identifiers `r#ident`. Returns false without consuming anything
    /// when the `r`/`b`/`c` starts a plain identifier instead.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let line = self.line;
        let c0 = self.peek(0).unwrap_or(' ');
        // b'x' byte char.
        if c0 == 'b' && self.peek(1) == Some('\'') {
            self.pos += 1;
            self.quote(line);
            return true;
        }
        // b"…" byte string / c"…" C string.
        if (c0 == 'b' || c0 == 'c') && self.peek(1) == Some('"') {
            self.pos += 1;
            self.string_literal(line);
            return true;
        }
        // br / cr raw-with-prefix.
        let raw_at = if c0 == 'r' {
            Some(1)
        } else if (c0 == 'b' || c0 == 'c') && self.peek(1) == Some('r') {
            Some(2)
        } else {
            None
        };
        if let Some(after_r) = raw_at {
            // Count hash fence.
            let mut hashes = 0usize;
            while self.peek(after_r + hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(after_r + hashes) == Some('"') {
                self.pos += after_r + hashes + 1;
                self.raw_string_body(line, hashes);
                return true;
            }
            // r#ident raw identifier.
            if c0 == 'r' && hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
                self.pos += 2;
                self.ident(line);
                return true;
            }
        }
        false
    }

    fn raw_string_body(&mut self, line: usize, hashes: usize) {
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                self.pos += hashes;
                break;
            }
        }
        self.out.push(Token {
            kind: TokenKind::Literal,
            line,
        });
    }

    fn ident(&mut self, line: usize) {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.push(Token {
            kind: TokenKind::Ident(text),
            line,
        });
    }

    /// Numbers only need to be skipped atomically so suffixes/exponents do
    /// not leak identifier tokens (`1.0e-12f64` must not emit `f64`). A
    /// dot is consumed only when followed by a digit, keeping `0..n` and
    /// `1.max(2)` intact.
    fn number(&mut self, line: usize) {
        while let Some(c) = self.peek(0) {
            let part_of_number = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                || ((c == '+' || c == '-')
                    && matches!(self.chars.get(self.pos.wrapping_sub(1)), Some('e' | 'E')));
            if !part_of_number {
                break;
            }
            self.pos += 1;
        }
        self.out.push(Token {
            kind: TokenKind::Literal,
            line,
        });
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn plain_idents_and_lines() {
        let toks = lex("let x = 1;\nuse std::collections;\n");
        let uses: Vec<_> = toks.iter().filter(|t| t.ident() == Some("use")).collect();
        assert_eq!(uses.len(), 1);
        assert_eq!(uses[0].line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let s = "use HashMap here";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let src = "let s = r#\"HashMap \"quoted\" inside\"#; let t = r\"HashSet\";";
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn byte_and_c_strings_hide_their_contents() {
        let src = "let a = b\"HashMap\"; let b2 = br#\"HashSet\"#;";
        assert_eq!(idents(src), vec!["let", "a", "let", "b2"]);
    }

    #[test]
    fn comments_are_tokens_not_idents() {
        let src = "// HashMap in a comment\n/* Instant::now in /* nested */ block */ fn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
        let comments: Vec<_> = lex(src)
            .into_iter()
            .filter_map(|t| t.comment().map(str::to_owned))
            .collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].contains("HashMap"));
        assert!(comments[1].contains("nested"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        // 'a' is a char; 'a in a generic is a lifetime; '\'' escapes.
        let src = "fn f<'a>(p: &'a str) { let c = 'x'; let q = '\\''; let n = '\\n'; }";
        let ids = idents(src);
        assert!(
            ids.contains(&"a".to_string()),
            "lifetime ident kept: {ids:?}"
        );
        assert!(
            !ids.contains(&"x".to_string()),
            "char literal skipped: {ids:?}"
        );
    }

    #[test]
    fn byte_char_literal() {
        assert_eq!(idents("let x = b'H';"), vec!["let", "x"]);
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "match"]);
    }

    #[test]
    fn numeric_suffixes_do_not_leak_idents() {
        assert_eq!(idents("let x = 1.0e-12f64 + 0xFFu32;"), vec!["let", "x"]);
    }

    #[test]
    fn ranges_survive_number_lexing() {
        let toks = lex("for i in 0..n {}");
        let dots = toks.iter().filter(|t| t.punct() == Some('.')).count();
        assert_eq!(dots, 2);
        assert!(toks.iter().any(|t| t.ident() == Some("n")));
    }

    #[test]
    fn line_numbers_through_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nfn g() {}";
        let toks = lex(src);
        let g = toks.iter().find(|t| t.ident() == Some("g")).unwrap();
        assert_eq!(g.line, 5);
    }

    #[test]
    fn unterminated_string_swallows_to_eof() {
        assert_eq!(idents("let s = \"oops HashMap"), vec!["let", "s"]);
    }
}
