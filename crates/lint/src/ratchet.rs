//! The debt ratchets: committed baselines that may shrink but never grow.
//!
//! Two tables, one file (`lint-ratchet.toml` at the workspace root):
//! `[panic-surface]` holds `unwrap()`/`expect(` counts per hot crate and
//! `[unsafe-blocks]` holds `unsafe` token counts per crate owning a SIMD
//! allowlist path. The parser handles exactly the subset of TOML the file
//! uses (comments, the two tables, `key = integer` entries) — the
//! container has no registry, so no toml crate.

use std::collections::BTreeMap;
use std::fmt;

use crate::rules::{Diagnostic, Rule};

/// File name of the committed baseline, relative to the linted root.
pub const RATCHET_FILE: &str = "lint-ratchet.toml";

/// Parsed baseline: per-crate ceilings for both debt tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ratchet {
    /// `[panic-surface]`: crate name → allowed `unwrap()`/`expect(` count.
    pub counts: BTreeMap<String, u64>,
    /// `[unsafe-blocks]`: crate name → allowed `unsafe` token count under
    /// the SIMD allowlist paths.
    pub unsafe_counts: BTreeMap<String, u64>,
}

/// A baseline entry whose measured count moved, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drift {
    /// Which ratchet table the entry lives in.
    pub table: &'static str,
    /// Crate whose count moved.
    pub krate: String,
    /// Committed ceiling.
    pub baseline: u64,
    /// Measured count.
    pub actual: u64,
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: baseline {} -> actual {}",
            self.table, self.krate, self.baseline, self.actual
        )
    }
}

impl Ratchet {
    /// Parses the baseline file.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on any syntax it does
    /// not understand — the file is hand-maintained, so fail loudly.
    pub fn parse(text: &str) -> Result<Ratchet, String> {
        let mut counts = BTreeMap::new();
        let mut unsafe_counts = BTreeMap::new();
        let mut in_unsafe_table = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                match line {
                    "[panic-surface]" => in_unsafe_table = false,
                    "[unsafe-blocks]" => in_unsafe_table = true,
                    _ => {
                        return Err(format!(
                            "{RATCHET_FILE}:{}: unknown table `{line}` (expected \
                             `[panic-surface]` or `[unsafe-blocks]`)",
                            idx + 1
                        ))
                    }
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "{RATCHET_FILE}:{}: expected `crate = count`, got `{line}`",
                    idx + 1
                ));
            };
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim();
            // Strip a trailing same-line comment.
            let value = value.split('#').next().unwrap_or("").trim();
            let count: u64 = value.parse().map_err(|_| {
                format!(
                    "{RATCHET_FILE}:{}: count for `{key}` is not an integer: `{value}`",
                    idx + 1
                )
            })?;
            if in_unsafe_table {
                unsafe_counts.insert(key, count);
            } else {
                counts.insert(key, count);
            }
        }
        Ok(Ratchet {
            counts,
            unsafe_counts,
        })
    }

    /// Renders the baseline back to its canonical committed form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic-surface ratchet: `unwrap()`/`expect(` counts in non-test code\n\
             # per hot crate. `sinr-lint --check` fails if any count GROWS; shrink\n\
             # the debt, then lower the ceiling with `sinr-lint --ratchet-update`.\n\
             # See README.md \"Static analysis\".\n\
             \n\
             [panic-surface]\n",
        );
        for (krate, count) in &self.counts {
            out.push_str(&format!("{krate} = {count}\n"));
        }
        out.push_str(
            "\n\
             # Unsafe-blocks ratchet: `unsafe` token counts under the SIMD kernel\n\
             # allowlist paths, per owning crate. Same discipline: never grows.\n\
             [unsafe-blocks]\n",
        );
        for (krate, count) in &self.unsafe_counts {
            out.push_str(&format!("{krate} = {count}\n"));
        }
        out
    }

    /// Compares measured counts against the baseline. Returns ratchet
    /// violations (count grew) as diagnostics pointing at the baseline
    /// file, and improvements (count shrank) separately so the caller can
    /// suggest `--ratchet-update` without failing.
    pub fn compare(&self, actual: &BTreeMap<String, u64>) -> (Vec<Diagnostic>, Vec<Drift>) {
        let mut violations = Vec::new();
        let mut improvements = Vec::new();
        for (krate, &measured) in actual {
            let baseline = self.counts.get(krate).copied();
            let entry_line = self.entry_line(krate);
            match baseline {
                Some(ceiling) if measured > ceiling => violations.push(Diagnostic {
                    path: RATCHET_FILE.to_string(),
                    line: entry_line,
                    rule: Rule::PanicRatchet,
                    message: format!(
                        "crate `{krate}` has {measured} `unwrap()`/`expect(` calls in \
                         non-test code, above the committed ceiling of {ceiling}; handle \
                         the error instead, or shrink debt elsewhere first"
                    ),
                }),
                Some(ceiling) if measured < ceiling => improvements.push(Drift {
                    table: "panic-surface",
                    krate: krate.clone(),
                    baseline: ceiling,
                    actual: measured,
                }),
                Some(_) => {}
                None => violations.push(Diagnostic {
                    path: RATCHET_FILE.to_string(),
                    line: 1,
                    rule: Rule::PanicRatchet,
                    message: format!(
                        "hot crate `{krate}` has no committed baseline (measured \
                         {measured}); run `sinr-lint --ratchet-update`"
                    ),
                }),
            }
        }
        (violations, improvements)
    }

    /// Compares measured `unsafe` token counts against `[unsafe-blocks]`.
    /// Same contract as [`Ratchet::compare`]; violations carry
    /// [`Rule::ForbidUnsafe`] since they report unsafe-surface growth.
    pub fn compare_unsafe(&self, actual: &BTreeMap<String, u64>) -> (Vec<Diagnostic>, Vec<Drift>) {
        let mut violations = Vec::new();
        let mut improvements = Vec::new();
        for (krate, &measured) in actual {
            let baseline = self.unsafe_counts.get(krate).copied();
            let entry_line = self.unsafe_entry_line(krate);
            match baseline {
                Some(ceiling) if measured > ceiling => violations.push(Diagnostic {
                    path: RATCHET_FILE.to_string(),
                    line: entry_line,
                    rule: Rule::ForbidUnsafe,
                    message: format!(
                        "crate `{krate}` has {measured} `unsafe` tokens under the SIMD \
                         allowlist, above the committed ceiling of {ceiling}; keep the \
                         unsafe surface from growing, or update the baseline deliberately"
                    ),
                }),
                Some(ceiling) if measured < ceiling => improvements.push(Drift {
                    table: "unsafe-blocks",
                    krate: krate.clone(),
                    baseline: ceiling,
                    actual: measured,
                }),
                Some(_) => {}
                None => violations.push(Diagnostic {
                    path: RATCHET_FILE.to_string(),
                    line: 1,
                    rule: Rule::ForbidUnsafe,
                    message: format!(
                        "SIMD-owning crate `{krate}` has no committed `[unsafe-blocks]` \
                         baseline (measured {measured}); run `sinr-lint --ratchet-update`"
                    ),
                }),
            }
        }
        (violations, improvements)
    }

    /// 1-based line of a crate's entry in the canonical rendering, so
    /// ratchet diagnostics carry a real `file:line`.
    fn entry_line(&self, krate: &str) -> usize {
        // Canonical render: 4 comment lines + blank + `[panic-surface]`,
        // entries start at line 7 in BTreeMap order.
        self.counts
            .keys()
            .position(|k| k == krate)
            .map_or(1, |i| 7 + i)
    }

    /// 1-based line of a crate's `[unsafe-blocks]` entry in the canonical
    /// rendering: the panic table ends at `6 + counts.len()`, then a blank
    /// line, two comment lines, and the table header.
    fn unsafe_entry_line(&self, krate: &str) -> usize {
        self.unsafe_counts
            .keys()
            .position(|k| k == krate)
            .map_or(1, |i| 11 + self.counts.len() + i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn parse_render_roundtrip() {
        let r = Ratchet {
            counts: counts(&[("geometry", 6), ("phy", 31), ("runtime", 14)]),
            unsafe_counts: counts(&[("geometry", 24), ("phy", 12)]),
        };
        let parsed = Ratchet::parse(&r.render()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_accepts_comments_and_quoted_keys() {
        let text = "# header\n[panic-surface]\n\"phy\" = 3 # inline note\n";
        let r = Ratchet::parse(text).unwrap();
        assert_eq!(r.counts.get("phy"), Some(&3));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Ratchet::parse("[other-table]\n").is_err());
        assert!(Ratchet::parse("phy three\n").is_err());
        assert!(Ratchet::parse("phy = many\n").is_err());
    }

    #[test]
    fn growth_is_a_violation_shrink_is_an_improvement() {
        let r = Ratchet {
            counts: counts(&[("phy", 5), ("runtime", 2), ("geometry", 1)]),
            unsafe_counts: BTreeMap::new(),
        };
        let measured = counts(&[("phy", 6), ("runtime", 1), ("geometry", 1)]);
        let (violations, improvements) = r.compare(&measured);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, Rule::PanicRatchet);
        assert!(violations[0].message.contains("`phy`"));
        assert_eq!(
            improvements,
            vec![Drift {
                table: "panic-surface",
                krate: "runtime".into(),
                baseline: 2,
                actual: 1
            }]
        );
    }

    #[test]
    fn unsafe_table_ratchets_independently() {
        let r = Ratchet {
            counts: counts(&[("phy", 5)]),
            unsafe_counts: counts(&[("geometry", 3), ("phy", 2)]),
        };
        // Growth in the unsafe table fails even when panic counts are fine.
        let (violations, improvements) = r.compare_unsafe(&counts(&[("geometry", 4), ("phy", 1)]));
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, Rule::ForbidUnsafe);
        assert!(violations[0].message.contains("`geometry`"));
        assert_eq!(improvements.len(), 1);
        assert_eq!(improvements[0].table, "unsafe-blocks");

        // A SIMD-owning crate with no committed entry is itself a failure.
        let (violations, _) = r.compare_unsafe(&counts(&[("geometry", 3), ("stats", 0)]));
        assert_eq!(violations.len(), 1);
        assert!(violations[0]
            .message
            .contains("no committed `[unsafe-blocks]` baseline"));
    }

    #[test]
    fn unsafe_entry_lines_point_into_canonical_render() {
        let r = Ratchet {
            counts: counts(&[("geometry", 6), ("phy", 31), ("runtime", 14)]),
            unsafe_counts: counts(&[("geometry", 24), ("phy", 12)]),
        };
        let rendered = r.render();
        let (violations, _) = r.compare_unsafe(&counts(&[("phy", 99)]));
        let line = violations[0].line;
        let text: Vec<&str> = rendered.lines().collect();
        assert!(text[line - 1].starts_with("phy ="), "{:?}", text[line - 1]);
    }

    #[test]
    fn missing_entry_is_a_violation() {
        let r = Ratchet::default();
        let (violations, _) = r.compare(&counts(&[("phy", 0)]));
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("no committed baseline"));
    }

    #[test]
    fn entry_lines_point_into_canonical_render() {
        let r = Ratchet {
            counts: counts(&[("geometry", 6), ("phy", 31), ("runtime", 14)]),
            unsafe_counts: BTreeMap::new(),
        };
        let rendered = r.render();
        let (violations, _) = r.compare(&counts(&[("phy", 99)]));
        let line = violations[0].line;
        let text: Vec<&str> = rendered.lines().collect();
        assert!(text[line - 1].starts_with("phy ="), "{:?}", text[line - 1]);
    }
}
