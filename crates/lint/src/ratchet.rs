//! The panic-surface ratchet: a committed baseline of `unwrap()`/`expect(`
//! counts per hot crate that may shrink but never grow.
//!
//! The baseline lives in `lint-ratchet.toml` at the workspace root. The
//! parser handles exactly the subset of TOML the file uses (comments, one
//! `[panic-surface]` table, `key = integer` entries) — the container has
//! no registry, so no toml crate.

use std::collections::BTreeMap;
use std::fmt;

use crate::rules::{Diagnostic, Rule};

/// File name of the committed baseline, relative to the linted root.
pub const RATCHET_FILE: &str = "lint-ratchet.toml";

/// Parsed baseline: crate name → allowed `unwrap()`/`expect(` count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ratchet {
    /// Per-crate ceilings.
    pub counts: BTreeMap<String, u64>,
}

/// A baseline entry whose measured count moved, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drift {
    /// Crate whose count moved.
    pub krate: String,
    /// Committed ceiling.
    pub baseline: u64,
    /// Measured count.
    pub actual: u64,
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: baseline {} -> actual {}",
            self.krate, self.baseline, self.actual
        )
    }
}

impl Ratchet {
    /// Parses the baseline file.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on any syntax it does
    /// not understand — the file is hand-maintained, so fail loudly.
    pub fn parse(text: &str) -> Result<Ratchet, String> {
        let mut counts = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                if line != "[panic-surface]" {
                    return Err(format!(
                        "{RATCHET_FILE}:{}: unknown table `{line}` (expected `[panic-surface]`)",
                        idx + 1
                    ));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "{RATCHET_FILE}:{}: expected `crate = count`, got `{line}`",
                    idx + 1
                ));
            };
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim();
            // Strip a trailing same-line comment.
            let value = value.split('#').next().unwrap_or("").trim();
            let count: u64 = value.parse().map_err(|_| {
                format!(
                    "{RATCHET_FILE}:{}: count for `{key}` is not an integer: `{value}`",
                    idx + 1
                )
            })?;
            counts.insert(key, count);
        }
        Ok(Ratchet { counts })
    }

    /// Renders the baseline back to its canonical committed form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic-surface ratchet: `unwrap()`/`expect(` counts in non-test code\n\
             # per hot crate. `sinr-lint --check` fails if any count GROWS; shrink\n\
             # the debt, then lower the ceiling with `sinr-lint --ratchet-update`.\n\
             # See README.md \"Static analysis\".\n\
             \n\
             [panic-surface]\n",
        );
        for (krate, count) in &self.counts {
            out.push_str(&format!("{krate} = {count}\n"));
        }
        out
    }

    /// Compares measured counts against the baseline. Returns ratchet
    /// violations (count grew) as diagnostics pointing at the baseline
    /// file, and improvements (count shrank) separately so the caller can
    /// suggest `--ratchet-update` without failing.
    pub fn compare(&self, actual: &BTreeMap<String, u64>) -> (Vec<Diagnostic>, Vec<Drift>) {
        let mut violations = Vec::new();
        let mut improvements = Vec::new();
        for (krate, &measured) in actual {
            let baseline = self.counts.get(krate).copied();
            let entry_line = self.entry_line(krate);
            match baseline {
                Some(ceiling) if measured > ceiling => violations.push(Diagnostic {
                    path: RATCHET_FILE.to_string(),
                    line: entry_line,
                    rule: Rule::PanicRatchet,
                    message: format!(
                        "crate `{krate}` has {measured} `unwrap()`/`expect(` calls in \
                         non-test code, above the committed ceiling of {ceiling}; handle \
                         the error instead, or shrink debt elsewhere first"
                    ),
                }),
                Some(ceiling) if measured < ceiling => improvements.push(Drift {
                    krate: krate.clone(),
                    baseline: ceiling,
                    actual: measured,
                }),
                Some(_) => {}
                None => violations.push(Diagnostic {
                    path: RATCHET_FILE.to_string(),
                    line: 1,
                    rule: Rule::PanicRatchet,
                    message: format!(
                        "hot crate `{krate}` has no committed baseline (measured \
                         {measured}); run `sinr-lint --ratchet-update`"
                    ),
                }),
            }
        }
        (violations, improvements)
    }

    /// 1-based line of a crate's entry in the canonical rendering, so
    /// ratchet diagnostics carry a real `file:line`.
    fn entry_line(&self, krate: &str) -> usize {
        // Canonical render: 4 comment lines + blank + `[panic-surface]`,
        // entries start at line 7 in BTreeMap order.
        self.counts
            .keys()
            .position(|k| k == krate)
            .map_or(1, |i| 7 + i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn parse_render_roundtrip() {
        let r = Ratchet {
            counts: counts(&[("geometry", 6), ("phy", 31), ("runtime", 14)]),
        };
        let parsed = Ratchet::parse(&r.render()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_accepts_comments_and_quoted_keys() {
        let text = "# header\n[panic-surface]\n\"phy\" = 3 # inline note\n";
        let r = Ratchet::parse(text).unwrap();
        assert_eq!(r.counts.get("phy"), Some(&3));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Ratchet::parse("[other-table]\n").is_err());
        assert!(Ratchet::parse("phy three\n").is_err());
        assert!(Ratchet::parse("phy = many\n").is_err());
    }

    #[test]
    fn growth_is_a_violation_shrink_is_an_improvement() {
        let r = Ratchet {
            counts: counts(&[("phy", 5), ("runtime", 2), ("geometry", 1)]),
        };
        let measured = counts(&[("phy", 6), ("runtime", 1), ("geometry", 1)]);
        let (violations, improvements) = r.compare(&measured);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, Rule::PanicRatchet);
        assert!(violations[0].message.contains("`phy`"));
        assert_eq!(
            improvements,
            vec![Drift {
                krate: "runtime".into(),
                baseline: 2,
                actual: 1
            }]
        );
    }

    #[test]
    fn missing_entry_is_a_violation() {
        let r = Ratchet::default();
        let (violations, _) = r.compare(&counts(&[("phy", 0)]));
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("no committed baseline"));
    }

    #[test]
    fn entry_lines_point_into_canonical_render() {
        let r = Ratchet {
            counts: counts(&[("geometry", 6), ("phy", 31), ("runtime", 14)]),
        };
        let rendered = r.render();
        let (violations, _) = r.compare(&counts(&[("phy", 99)]));
        let line = violations[0].line;
        let text: Vec<&str> = rendered.lines().collect();
        assert!(text[line - 1].starts_with("phy ="), "{:?}", text[line - 1]);
    }
}
