//! Workspace discovery: find every Rust source file and classify it.
//!
//! Classification is purely path-based — which crate a file belongs to and
//! whether it is test, binary, or example code — because that is exactly
//! the granularity the rules are specified at ("non-test code of the
//! deterministic crates", "library crates", …).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One Rust source file, path relative to the linted root (always with
/// `/` separators so diagnostics are stable across platforms).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Root-relative path, `/`-separated.
    pub rel_path: String,
    /// Full file contents.
    pub text: String,
}

impl SourceFile {
    /// The crate this file belongs to: the directory name under
    /// `crates/`, or `"root"` for the top-level facade crate.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.rel_path.split('/');
        if parts.next() == Some("crates") {
            parts.next().unwrap_or("root")
        } else {
            "root"
        }
    }

    /// Whether the file lives in an integration-test or bench tree
    /// (`tests/`, `benches/` path component).
    pub fn in_test_tree(&self) -> bool {
        self.rel_path
            .split('/')
            .any(|c| c == "tests" || c == "benches")
    }

    /// Whether the file is a binary target (`src/bin/**` or `src/main.rs`).
    pub fn is_bin(&self) -> bool {
        self.rel_path.contains("src/bin/") || self.rel_path.ends_with("src/main.rs")
    }

    /// Whether the file is an example (`examples/` path component).
    pub fn is_example(&self) -> bool {
        self.rel_path.split('/').any(|c| c == "examples")
    }

    /// Whether this is a crate root of a library target (`src/lib.rs`).
    pub fn is_lib_root(&self) -> bool {
        self.rel_path.ends_with("src/lib.rs")
    }
}

/// A loaded set of source files, ready for rule checks.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Every `.rs` file found, sorted by path for deterministic output.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Walks `root` collecting every `.rs` file, skipping `target/`,
    /// VCS metadata, and lint fixture corpora (`fixtures/` — those contain
    /// deliberate violations).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than racing deletions.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut paths: Vec<PathBuf> = Vec::new();
        walk(root, &mut paths)?;
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile {
                rel_path: rel,
                text,
            });
        }
        Ok(Workspace { files })
    }

    /// The names of all workspace crates found (directories under
    /// `crates/` containing a `src/`), plus `"root"` if a top-level
    /// `src/lib.rs` exists. Sorted.
    pub fn crate_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for f in &self.files {
            let name = f.crate_name().to_string();
            if !names.contains(&name) {
                names.push(name);
            }
        }
        names.sort();
        names
    }
}

const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", ".claude"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        // Racing deletion or permissions on an irrelevant dir: skip.
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.to_string(),
            text: String::new(),
        }
    }

    #[test]
    fn crate_classification() {
        assert_eq!(file("crates/phy/src/oracle.rs").crate_name(), "phy");
        assert_eq!(file("crates/core/src/sim/mod.rs").crate_name(), "core");
        assert_eq!(file("src/lib.rs").crate_name(), "root");
        assert_eq!(file("tests/broadcast_e2e.rs").crate_name(), "root");
        assert_eq!(file("examples/quickstart.rs").crate_name(), "root");
    }

    #[test]
    fn context_classification() {
        assert!(file("crates/phy/tests/oracle_alloc.rs").in_test_tree());
        assert!(file("tests/broadcast_e2e.rs").in_test_tree());
        assert!(!file("crates/phy/src/oracle.rs").in_test_tree());
        assert!(file("crates/bench/src/bin/experiments.rs").is_bin());
        assert!(!file("crates/bench/src/microbench.rs").is_bin());
        assert!(file("examples/quickstart.rs").is_example());
        assert!(file("crates/phy/src/lib.rs").is_lib_root());
        assert!(!file("crates/phy/src/oracle.rs").is_lib_root());
    }

    #[test]
    fn load_skips_fixture_corpora() {
        // Load this crate's own directory: the fixture corpus under
        // tests/fixtures/ contains deliberate violations and must be
        // invisible.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let ws = Workspace::load(root).unwrap();
        assert!(ws.files.iter().any(|f| f.rel_path == "src/lexer.rs"));
        assert!(
            ws.files.iter().all(|f| !f.rel_path.contains("fixtures/")),
            "fixture files leaked into the walk"
        );
    }
}
