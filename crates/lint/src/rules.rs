//! The six workspace invariants, as token-level checks.
//!
//! Every rule exists because a *dynamic* test already pins the property it
//! guards; the rule catches the violation at the source level, before it
//! costs a differential-test bisection. See the root `README.md` ("Static
//! analysis") for the rationale of each rule, and `ISSUE`/PR history for
//! the founding incident: a std `HashMap` iteration randomising the order
//! of floating-point interference sums in `CellAggregate`.

use std::collections::BTreeMap;
use std::fmt;

use crate::lexer::{lex, Token, TokenKind};
use crate::workspace::SourceFile;

/// The rule identifiers, as used in diagnostics and
/// `// lint: allow(<rule>) -- <reason>` annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `HashMap`/`HashSet` in non-test code of the deterministic
    /// crates: unordered iteration reorders FP accumulation.
    UnorderedCollections,
    /// Library crate roots carry `#![forbid(unsafe_code)]` — except the
    /// roots of crates owning a `simd_unsafe_allowed_paths` entry, which
    /// may relax to `#![deny(unsafe_code)]` (forbid cannot be overridden
    /// by the SIMD modules' scoped allows). `unsafe` itself is permitted
    /// only under the allowed paths, and every occurrence needs an
    /// immediately preceding `// SAFETY:` comment.
    ForbidUnsafe,
    /// No `Instant::now`/`SystemTime`/`thread::sleep` anywhere except the
    /// explicitly exempt crates — timing belongs to `bench`, and the
    /// server (`serve`) may block on sockets but never reads clocks into
    /// results.
    WallClock,
    /// `available_parallelism` may appear in exactly one resolver file,
    /// so the thread budget stays resolved once per `Simulation`.
    ParallelismResolver,
    /// No `println!`/`eprintln!`/`dbg!` in library code.
    QuietLibraries,
    /// Per-crate `unwrap()`/`expect(` counts must not exceed the
    /// committed `lint-ratchet.toml` baseline.
    PanicRatchet,
    /// Meta-rule: malformed or unused `// lint: allow` annotations.
    LintAnnotation,
}

impl Rule {
    /// The kebab-case name used in annotations and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedCollections => "unordered-collections",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::WallClock => "wall-clock",
            Rule::ParallelismResolver => "parallelism-resolver",
            Rule::QuietLibraries => "quiet-libraries",
            Rule::PanicRatchet => "panic-ratchet",
            Rule::LintAnnotation => "lint-annotation",
        }
    }

    /// Parses an annotation rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        [
            Rule::UnorderedCollections,
            Rule::ForbidUnsafe,
            Rule::WallClock,
            Rule::ParallelismResolver,
            Rule::QuietLibraries,
            Rule::PanicRatchet,
            Rule::LintAnnotation,
        ]
        .into_iter()
        .find(|r| r.name() == name)
    }
}

/// One finding, pointing at a root-relative `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Root-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Which crates each rule applies to. The defaults encode this
/// workspace's layout; fixture tests inject the same config against a
/// mini-tree.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose non-test code must avoid unordered collections.
    pub deterministic_crates: Vec<String>,
    /// Crates permitted to read wall clocks; everything else is denied.
    /// An exempt-list (not an applies-list) so new crates are covered by
    /// default instead of silently escaping the rule.
    pub wallclock_exempt_crates: Vec<String>,
    /// Crates under the panic-surface ratchet.
    pub hot_crates: Vec<String>,
    /// Crates exempt from `quiet-libraries` (the measurement/reporting
    /// harness prints by design).
    pub quiet_exempt_crates: Vec<String>,
    /// The single file allowed to call `available_parallelism`.
    pub parallelism_resolver: String,
    /// Directory prefixes (root-relative, trailing `/`) whose files may
    /// contain `unsafe` — the explicit-SIMD kernel modules. Everything
    /// outside these paths is unsafe-free; inside them every `unsafe`
    /// still needs `// SAFETY:` and the per-crate token counts ride the
    /// `[unsafe-blocks]` ratchet.
    pub simd_unsafe_allowed_paths: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let v = |names: &[&str]| names.iter().map(|s| s.to_string()).collect();
        Config {
            deterministic_crates: v(&[
                "geometry", "phy", "runtime", "netgen", "core", "sim", "wire", "serve",
            ]),
            wallclock_exempt_crates: v(&["bench", "serve"]),
            hot_crates: v(&["phy", "geometry", "runtime"]),
            quiet_exempt_crates: v(&["bench", "lint"]),
            parallelism_resolver: "crates/core/src/sim/scenario.rs".to_string(),
            simd_unsafe_allowed_paths: v(&["crates/geometry/src/simd/", "crates/phy/src/simd/"]),
        }
    }
}

/// Result of checking a set of files: diagnostics (before ratchet
/// comparison) plus the measured panic-surface counts per hot crate.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// All findings, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// `unwrap()`/`expect(` call counts in non-test code per hot crate.
    pub panic_counts: BTreeMap<String, u64>,
    /// `unsafe` token counts under the SIMD allowlist, per owning crate.
    pub unsafe_counts: BTreeMap<String, u64>,
}

/// Runs every rule over `files`. Ratchet *comparison* happens in
/// [`crate::ratchet`]; this only measures the counts.
pub fn check_files(files: &[SourceFile], cfg: &Config) -> CheckResult {
    let mut diagnostics = Vec::new();
    let mut panic_counts: BTreeMap<String, u64> = BTreeMap::new();
    for c in &cfg.hot_crates {
        panic_counts.insert(c.clone(), 0);
    }
    let mut unsafe_counts: BTreeMap<String, u64> = BTreeMap::new();
    for c in cfg
        .simd_unsafe_allowed_paths
        .iter()
        .filter_map(|p| owning_crate(p))
    {
        unsafe_counts.insert(c.to_string(), 0);
    }
    for file in files {
        check_file(
            file,
            cfg,
            &mut diagnostics,
            &mut panic_counts,
            &mut unsafe_counts,
        );
    }
    diagnostics.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    CheckResult {
        diagnostics,
        panic_counts,
        unsafe_counts,
    }
}

/// The crate an allowed path belongs to (`crates/<name>/...`), if any.
fn owning_crate(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

/// A parsed `// lint: allow(<rule>) -- <reason>` annotation.
struct Allow {
    line: usize,
    rule: Rule,
    used: bool,
}

fn check_file(
    file: &SourceFile,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
    panic_counts: &mut BTreeMap<String, u64>,
    unsafe_counts: &mut BTreeMap<String, u64>,
) {
    let tokens = lex(&file.text);
    let krate = file.crate_name().to_string();

    // --- Comment-derived context -----------------------------------
    let mut comment_lines: BTreeMap<usize, String> = BTreeMap::new();
    let mut allows: Vec<Allow> = Vec::new();
    for t in &tokens {
        if let Some(text) = t.comment() {
            for (i, piece) in text.split('\n').enumerate() {
                comment_lines.entry(t.line + i).or_default().push_str(piece);
            }
            match parse_allow(text) {
                AllowParse::None => {}
                AllowParse::Ok(rule) => allows.push(Allow {
                    line: t.line,
                    rule,
                    used: false,
                }),
                AllowParse::Malformed(why) => out.push(Diagnostic {
                    path: file.rel_path.clone(),
                    line: t.line,
                    rule: Rule::LintAnnotation,
                    message: format!("malformed lint annotation: {why}"),
                }),
            }
        }
    }

    // Code tokens only (comments stripped) for sequence matching.
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
        .collect();
    let test_lines = test_region_lines(&code);
    let in_test_region = |line: usize| test_lines.iter().any(|&(lo, hi)| line >= lo && line <= hi);

    // Raw findings, suppressed at the end of this function.
    let mut findings: Vec<Diagnostic> = Vec::new();
    let push = |findings: &mut Vec<Diagnostic>, line: usize, rule: Rule, message: String| {
        findings.push(Diagnostic {
            path: file.rel_path.clone(),
            line,
            rule,
            message,
        });
    };

    let lib_context = !file.in_test_tree() && !file.is_bin() && !file.is_example();

    // --- Rule 1: unordered-collections -----------------------------
    if cfg.deterministic_crates.contains(&krate) && lib_context {
        for t in &code {
            if let Some(id @ ("HashMap" | "HashSet")) = t.ident() {
                if !in_test_region(t.line) {
                    push(
                        &mut findings,
                        t.line,
                        Rule::UnorderedCollections,
                        format!(
                            "`{id}` in deterministic crate `{krate}`: unordered iteration \
                             reorders FP accumulation (the PR-2 CellAggregate bug); use \
                             `BTreeMap`/`BTreeSet` or a sorted vec"
                        ),
                    );
                }
            }
        }
    }

    // --- Rule 2a: crate roots forbid unsafe ------------------------
    // Crates owning a SIMD allowlist entry cannot use `forbid` (it is
    // not overridable by the kernels' scoped `#[allow]`s), so their
    // roots may carry `#![deny(unsafe_code)]` instead.
    let owns_simd_path = cfg
        .simd_unsafe_allowed_paths
        .iter()
        .any(|p| owning_crate(p) == Some(krate.as_str()));
    if file.is_lib_root() && !has_forbid_unsafe(&code) {
        if owns_simd_path {
            if !has_deny_unsafe(&code) {
                push(
                    &mut findings,
                    1,
                    Rule::ForbidUnsafe,
                    format!(
                        "library crate root of `{krate}` (owner of a SIMD allowlist path) \
                         must carry `#![deny(unsafe_code)]`"
                    ),
                );
            }
        } else {
            push(
                &mut findings,
                1,
                Rule::ForbidUnsafe,
                "library crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            );
        }
    }

    // --- Rule 2b: unsafe only under the allowlist, with SAFETY -----
    let in_allowed_path = cfg
        .simd_unsafe_allowed_paths
        .iter()
        .any(|p| file.rel_path.starts_with(p.as_str()));
    for t in &code {
        if t.ident() != Some("unsafe") {
            continue;
        }
        if in_allowed_path {
            *unsafe_counts.entry(krate.clone()).or_insert(0) += 1;
        }
        // One diagnostic per token: outside the allowlist the location
        // itself is the violation; a SAFETY comment cannot excuse it.
        if !in_allowed_path && lib_context && !in_test_region(t.line) {
            push(
                &mut findings,
                t.line,
                Rule::ForbidUnsafe,
                format!(
                    "`unsafe` outside the SIMD allowlist ({}): move the kernel under \
                     an allowed path or find a safe formulation",
                    cfg.simd_unsafe_allowed_paths.join(", ")
                ),
            );
        } else if !has_safety_comment(&comment_lines, t.line) {
            push(
                &mut findings,
                t.line,
                Rule::ForbidUnsafe,
                "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
            );
        }
    }

    // --- Rule 3: wall-clock-free by default ------------------------
    if !cfg.wallclock_exempt_crates.contains(&krate) {
        for (i, t) in code.iter().enumerate() {
            let flagged = match t.ident() {
                Some("Instant") | Some("SystemTime") => true,
                Some("sleep") => code[i.saturating_sub(3)..i]
                    .iter()
                    .any(|p| p.ident() == Some("thread")),
                _ => false,
            };
            if flagged {
                push(
                    &mut findings,
                    t.line,
                    Rule::WallClock,
                    format!(
                        "wall-clock access (`{}`) in non-exempt crate `{krate}`: results must \
                         be a pure function of the seed; timing belongs to `bench`",
                        t.ident().unwrap_or("?")
                    ),
                );
            }
        }
    }

    // --- Rule 4: single parallelism resolver -----------------------
    if file.rel_path != cfg.parallelism_resolver {
        for t in &code {
            if t.ident() == Some("available_parallelism") {
                push(
                    &mut findings,
                    t.line,
                    Rule::ParallelismResolver,
                    format!(
                        "`available_parallelism` outside `{}`: the thread budget is \
                         resolved exactly once per `Simulation` so sweep workers and \
                         physics threads cannot oversubscribe",
                        cfg.parallelism_resolver
                    ),
                );
            }
        }
    }

    // --- Rule 5: quiet libraries -----------------------------------
    if lib_context && !cfg.quiet_exempt_crates.contains(&krate) {
        for (i, t) in code.iter().enumerate() {
            if let Some(id @ ("println" | "eprintln" | "dbg")) = t.ident() {
                let is_macro = code.get(i + 1).map(|n| n.punct()) == Some(Some('!'));
                if is_macro && !in_test_region(t.line) {
                    push(
                        &mut findings,
                        t.line,
                        Rule::QuietLibraries,
                        format!(
                            "`{id}!` in library crate `{krate}`: return data, let binaries \
                             print"
                        ),
                    );
                }
            }
        }
    }

    // --- Rule 6: panic-surface measurement -------------------------
    if cfg.hot_crates.contains(&krate) && lib_context {
        for (i, t) in code.iter().enumerate() {
            if let Some("unwrap" | "expect") = t.ident() {
                let is_call = code.get(i + 1).map(|n| n.punct()) == Some(Some('('));
                if is_call && !in_test_region(t.line) {
                    *panic_counts.entry(krate.clone()).or_insert(0) += 1;
                }
            }
        }
    }

    // --- Suppression and annotation hygiene ------------------------
    for d in findings {
        let suppressed = allows
            .iter_mut()
            .find(|a| a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line));
        match suppressed {
            Some(a) => a.used = true,
            None => out.push(d),
        }
    }
    for a in &allows {
        if !a.used {
            out.push(Diagnostic {
                path: file.rel_path.clone(),
                line: a.line,
                rule: Rule::LintAnnotation,
                message: format!(
                    "unused `lint: allow({})` — nothing on this or the next line \
                     triggers the rule; remove the annotation",
                    a.rule.name()
                ),
            });
        }
    }
}

enum AllowParse {
    /// Not a lint annotation at all.
    None,
    /// Well-formed: suppresses `rule`.
    Ok(Rule),
    /// Meant to be an annotation but does not parse.
    Malformed(String),
}

/// Parses `// lint: allow(<rule>) -- <reason>`; the reason is mandatory —
/// suppressions double as documentation.
fn parse_allow(comment: &str) -> AllowParse {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim();
    let Some(rest) = body.strip_prefix("lint:") else {
        return AllowParse::None;
    };
    let rest = rest.trim();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return AllowParse::Malformed("expected `lint: allow(<rule>) -- <reason>`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return AllowParse::Malformed("unterminated `allow(`".to_string());
    };
    let name = rest[..close].trim();
    let Some(rule) = Rule::from_name(name) else {
        return AllowParse::Malformed(format!("unknown rule `{name}`"));
    };
    let tail = rest[close + 1..].trim();
    let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return AllowParse::Malformed(format!(
            "`allow({name})` needs a justification: `-- <reason>`"
        ));
    }
    AllowParse::Ok(rule)
}

/// True if the token stream contains `# ! [ forbid ( unsafe_code ) ]`.
fn has_forbid_unsafe(code: &[&Token]) -> bool {
    let want: [&dyn Fn(&Token) -> bool; 8] = [
        &|t| t.punct() == Some('#'),
        &|t| t.punct() == Some('!'),
        &|t| t.punct() == Some('['),
        &|t| t.ident() == Some("forbid"),
        &|t| t.punct() == Some('('),
        &|t| t.ident() == Some("unsafe_code"),
        &|t| t.punct() == Some(')'),
        &|t| t.punct() == Some(']'),
    ];
    code.windows(8)
        .any(|w| w.iter().zip(&want).all(|(t, m)| m(t)))
}

/// True if the token stream contains `#![deny(unsafe_code)]`.
fn has_deny_unsafe(code: &[&Token]) -> bool {
    let want: [&dyn Fn(&Token) -> bool; 8] = [
        &|t| t.punct() == Some('#'),
        &|t| t.punct() == Some('!'),
        &|t| t.punct() == Some('['),
        &|t| t.ident() == Some("deny"),
        &|t| t.punct() == Some('('),
        &|t| t.ident() == Some("unsafe_code"),
        &|t| t.punct() == Some(')'),
        &|t| t.punct() == Some(']'),
    ];
    code.windows(8)
        .any(|w| w.iter().zip(&want).all(|(t, m)| m(t)))
}

/// True if the contiguous comment block ending on the line above `line`
/// (or a comment on `line` itself) contains `SAFETY:`.
fn has_safety_comment(comment_lines: &BTreeMap<usize, String>, line: usize) -> bool {
    if comment_lines
        .get(&line)
        .is_some_and(|t| t.contains("SAFETY:"))
    {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        match comment_lines.get(&l) {
            Some(text) if text.contains("SAFETY:") => return true,
            Some(_) => continue,
            None => return false,
        }
    }
    false
}

/// Line ranges covered by `#[cfg(test)]`-gated items and `#[test]`
/// functions: attributes are located, then the following brace block is
/// matched. Known limitation (documented in the crate docs): `not(test)`
/// inside a `cfg` is treated as non-test only via the `not` escape below.
fn test_region_lines(code: &[&Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].punct() == Some('#') && code.get(i + 1).map(|t| t.punct()) == Some(Some('[')) {
            // Collect the attribute's tokens up to its closing `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut idents: Vec<&str> = Vec::new();
            while j < code.len() && depth > 0 {
                match code[j].punct() {
                    Some('[') => depth += 1,
                    Some(']') => depth -= 1,
                    _ => {
                        if let Some(id) = code[j].ident() {
                            idents.push(id);
                        }
                    }
                }
                j += 1;
            }
            let is_test_attr =
                (idents.contains(&"cfg") && idents.contains(&"test") && !idents.contains(&"not"))
                    || idents == ["test"];
            if is_test_attr {
                // Find the gated item's body: first `{` before any `;`.
                let mut k = j;
                while k < code.len() {
                    match code[k].punct() {
                        Some(';') => break, // `mod foo;` — out-of-line, skip
                        Some('{') => {
                            let start_line = code[i].line;
                            let end_line = match_brace(code, k);
                            regions.push((start_line, end_line));
                            break;
                        }
                        _ => k += 1,
                    }
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

/// Given the index of a `{`, returns the line of its matching `}` (or the
/// last token's line if unbalanced).
fn match_brace(code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    for t in &code[open..] {
        match t.punct() {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return t.line;
                }
            }
            _ => {}
        }
    }
    code.last().map_or(0, |t| t.line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, text: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.to_string(),
            text: text.to_string(),
        }
    }

    fn rules_of(result: &CheckResult) -> Vec<(Rule, usize)> {
        result
            .diagnostics
            .iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn hashmap_flagged_in_deterministic_crate_only() {
        let cfg = Config::default();
        let src = "use std::collections::HashMap;\n";
        let det = check_files(&[file("crates/phy/src/a.rs", src)], &cfg);
        assert_eq!(rules_of(&det), vec![(Rule::UnorderedCollections, 1)]);
        let non = check_files(&[file("crates/stats/src/a.rs", src)], &cfg);
        assert!(non.diagnostics.is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let cfg = Config::default();
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { let _m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        let r = check_files(&[file("crates/phy/src/a.rs", src)], &cfg);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let cfg = Config::default();
        let src = "#[cfg(not(test))]\nmod real {\n    use std::collections::HashSet;\n}\n";
        let r = check_files(&[file("crates/phy/src/a.rs", src)], &cfg);
        assert_eq!(rules_of(&r), vec![(Rule::UnorderedCollections, 3)]);
    }

    #[test]
    fn allow_annotation_suppresses_and_is_marked_used() {
        let cfg = Config::default();
        let src = "// lint: allow(unordered-collections) -- scratch map, iteration never observed\nuse std::collections::HashMap;\n";
        let r = check_files(&[file("crates/phy/src/a.rs", src)], &cfg);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let cfg = Config::default();
        let src = "// lint: allow(unordered-collections)\nuse std::collections::HashMap;\n";
        let r = check_files(&[file("crates/phy/src/a.rs", src)], &cfg);
        let rules: Vec<Rule> = r.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&Rule::LintAnnotation), "{:?}", r.diagnostics);
        assert!(
            rules.contains(&Rule::UnorderedCollections),
            "malformed allow must not suppress: {:?}",
            r.diagnostics
        );
    }

    #[test]
    fn unused_allow_is_flagged() {
        let cfg = Config::default();
        let src = "// lint: allow(wall-clock) -- stale justification\npub fn f() {}\n";
        let r = check_files(&[file("crates/phy/src/a.rs", src)], &cfg);
        assert_eq!(rules_of(&r), vec![(Rule::LintAnnotation, 1)]);
    }

    #[test]
    fn missing_forbid_flagged_on_lib_roots_only() {
        let cfg = Config::default();
        let r = check_files(&[file("crates/stats/src/lib.rs", "pub fn f() {}\n")], &cfg);
        assert_eq!(rules_of(&r), vec![(Rule::ForbidUnsafe, 1)]);
        let ok = check_files(
            &[file(
                "crates/stats/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {}\n",
            )],
            &cfg,
        );
        assert!(ok.diagnostics.is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let cfg = Config::default();
        // Under an allowed SIMD path: SAFETY-less unsafe is flagged...
        let bad = "pub fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let r = check_files(&[file("crates/phy/src/simd/a.rs", bad)], &cfg);
        assert_eq!(rules_of(&r), vec![(Rule::ForbidUnsafe, 1)]);
        assert!(r.diagnostics[0].message.contains("SAFETY"));
        // ...and a SAFETY comment satisfies the rule.
        let good = "// SAFETY: guarded by the match above.\npub fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let r = check_files(&[file("crates/phy/src/simd/a.rs", good)], &cfg);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.unsafe_counts.get("phy"), Some(&1));
    }

    #[test]
    fn safety_comment_block_may_sit_several_lines_up() {
        let cfg = Config::default();
        let good = "// SAFETY: all indices are in bounds by construction;\n// the caller checked the length.\nunsafe fn g() {}\n";
        let r = check_files(&[file("crates/geometry/src/simd/a.rs", good)], &cfg);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn unsafe_outside_the_allowlist_is_flagged_even_with_safety() {
        let cfg = Config::default();
        // A SAFETY comment cannot excuse unsafe outside the SIMD paths —
        // the location itself is the violation, and exactly one
        // diagnostic fires per token.
        let src = "// SAFETY: looks justified but the path is wrong.\npub fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let r = check_files(&[file("crates/stats/src/a.rs", src)], &cfg);
        assert_eq!(rules_of(&r), vec![(Rule::ForbidUnsafe, 2)]);
        assert!(
            r.diagnostics[0]
                .message
                .contains("outside the SIMD allowlist"),
            "{:?}",
            r.diagnostics
        );
        // Tokens outside the allowlist never enter the unsafe ratchet.
        assert!(r.unsafe_counts.values().all(|&c| c == 0));
        // Test code and bins keep the old SAFETY-only contract.
        let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    // SAFETY: exercising the FFI shim.\n    fn t() { unsafe { ffi() } }\n}\n";
        let r = check_files(&[file("crates/stats/src/a.rs", test_src)], &cfg);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn simd_owning_roots_may_deny_instead_of_forbid() {
        let cfg = Config::default();
        // `phy` owns an allowlist path, so its root may carry deny...
        let deny = "#![deny(unsafe_code)]\npub fn f() {}\n";
        let r = check_files(&[file("crates/phy/src/lib.rs", deny)], &cfg);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        // ...but not nothing at all.
        let r = check_files(&[file("crates/phy/src/lib.rs", "pub fn f() {}\n")], &cfg);
        assert_eq!(rules_of(&r), vec![(Rule::ForbidUnsafe, 1)]);
        assert!(r.diagnostics[0].message.contains("deny(unsafe_code)"));
        // Non-owning crates cannot downgrade to deny.
        let r = check_files(&[file("crates/stats/src/lib.rs", deny)], &cfg);
        assert_eq!(rules_of(&r), vec![(Rule::ForbidUnsafe, 1)]);
        assert!(r.diagnostics[0].message.contains("forbid(unsafe_code)"));
    }

    #[test]
    fn wallclock_flagged_everywhere_but_exempt_crates() {
        let cfg = Config::default();
        let src = "use std::time::Instant;\npub fn t() { let _ = Instant::now(); std::thread::sleep(d); }\n";
        let r = check_files(&[file("crates/geometry/src/a.rs", src)], &cfg);
        let rules: Vec<Rule> = r.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec![Rule::WallClock; 3], "{:?}", r.diagnostics);
        // A brand-new crate is covered without any config change.
        let r = check_files(&[file("crates/brand_new/src/a.rs", src)], &cfg);
        let rules: Vec<Rule> = r.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec![Rule::WallClock; 3], "{:?}", r.diagnostics);
        // Only the exempt-list escapes: bench (measures) and serve (blocks
        // on sockets/timeouts, never folds time into results).
        let r = check_files(&[file("crates/bench/src/a.rs", src)], &cfg);
        assert!(r.diagnostics.is_empty());
        let r = check_files(&[file("crates/serve/src/a.rs", src)], &cfg);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn parallelism_allowed_only_in_resolver() {
        let cfg = Config::default();
        let src = "let n = std::thread::available_parallelism();\n";
        let r = check_files(&[file("crates/core/src/sim/scenario.rs", src)], &cfg);
        assert!(r.diagnostics.is_empty());
        let r = check_files(&[file("crates/runtime/src/engine.rs", src)], &cfg);
        assert_eq!(rules_of(&r), vec![(Rule::ParallelismResolver, 1)]);
    }

    #[test]
    fn quiet_libraries_allows_bins_and_bench() {
        let cfg = Config::default();
        let src = "pub fn report() { println!(\"x\"); }\n";
        let r = check_files(&[file("crates/stats/src/a.rs", src)], &cfg);
        assert_eq!(rules_of(&r), vec![(Rule::QuietLibraries, 1)]);
        assert!(check_files(&[file("crates/bench/src/a.rs", src)], &cfg)
            .diagnostics
            .is_empty());
        assert!(
            check_files(&[file("crates/stats/src/bin/cli.rs", src)], &cfg)
                .diagnostics
                .is_empty()
        );
        assert!(check_files(&[file("examples/demo.rs", src)], &cfg)
            .diagnostics
            .is_empty());
    }

    #[test]
    fn panic_counts_measured_outside_tests_only() {
        let cfg = Config::default();
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\npub fn g(x: Option<u8>) -> u8 { x.expect(\"set\") }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::f(Some(1)); None::<u8>.unwrap_or(0); Some(2).unwrap(); }\n}\n";
        let r = check_files(&[file("crates/phy/src/a.rs", src)], &cfg);
        assert_eq!(r.panic_counts.get("phy"), Some(&2), "{:?}", r.panic_counts);
        // Test-tree files don't count at all.
        let r = check_files(
            &[file("crates/phy/tests/a.rs", "fn t() { x.unwrap(); }")],
            &cfg,
        );
        assert_eq!(r.panic_counts.get("phy"), Some(&0));
    }

    #[test]
    fn tokens_inside_literals_never_trigger() {
        let cfg = Config::default();
        let src = "pub fn f() -> &'static str { \"HashMap Instant::now println! unsafe\" }\n// HashMap in a comment\nconst R: &str = r#\"HashSet dbg!(x)\"#;\n";
        let r = check_files(&[file("crates/phy/src/a.rs", src)], &cfg);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }
}
