//! Fixture-corpus test: every known-bad snippet is flagged at exactly the
//! right `file:line`, lexer edge cases are NOT flagged, and the ratchet
//! comparison rejects growth.

use std::path::{Path, PathBuf};

use sinr_lint::{lint_files, Config, Ratchet, Rule, Workspace};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("bad_workspace")
}

fn zero_baseline() -> Ratchet {
    Ratchet {
        counts: [("geometry", 0), ("phy", 0), ("runtime", 0)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        unsafe_counts: [("geometry", 0), ("phy", 0)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    }
}

#[test]
fn every_bad_snippet_flagged_at_its_line() {
    let ws = Workspace::load(&fixture_root()).unwrap();
    assert_eq!(ws.files.len(), 9, "fixture corpus drifted: {ws:?}");
    let report = lint_files(&ws.files, &Config::default(), Some(&zero_baseline()));

    let got: Vec<(&str, usize, Rule)> = report
        .diagnostics
        .iter()
        .map(|d| (d.path.as_str(), d.line, d.rule))
        .collect();
    let expected: Vec<(&str, usize, Rule)> = vec![
        ("crates/phy/src/lib.rs", 1, Rule::ForbidUnsafe),
        ("crates/phy/src/noisy.rs", 4, Rule::QuietLibraries),
        ("crates/phy/src/noisy.rs", 5, Rule::QuietLibraries),
        ("crates/phy/src/noisy.rs", 6, Rule::QuietLibraries),
        ("crates/phy/src/parallel.rs", 4, Rule::ParallelismResolver),
        // Under an allowed SIMD path the missing-SAFETY contract applies.
        ("crates/phy/src/simd/kernel.rs", 5, Rule::ForbidUnsafe),
        ("crates/phy/src/unordered.rs", 4, Rule::UnorderedCollections),
        // Outside the allowlist, location is the violation — twice, and
        // the SAFETY comment on line 8 does not excuse line 9.
        ("crates/phy/src/unsound.rs", 4, Rule::ForbidUnsafe),
        ("crates/phy/src/unsound.rs", 9, Rule::ForbidUnsafe),
        ("crates/phy/src/wallclock.rs", 4, Rule::WallClock),
        ("crates/phy/src/wallclock.rs", 5, Rule::WallClock),
        ("crates/phy/src/wallclock.rs", 6, Rule::WallClock),
        // The seeded unwrap in panicky.rs (1) exceeds the zero baseline;
        // line 8 is phy's entry in the canonical baseline rendering.
        ("lint-ratchet.toml", 8, Rule::PanicRatchet),
        // The seeded unsafe in simd/kernel.rs (1) exceeds the zero
        // `[unsafe-blocks]` baseline; line 15 is phy's entry there.
        ("lint-ratchet.toml", 15, Rule::ForbidUnsafe),
    ];
    assert_eq!(got, expected, "full diagnostics: {:#?}", report.diagnostics);
}

#[test]
fn lexer_edge_fixture_is_silent() {
    let ws = Workspace::load(&fixture_root()).unwrap();
    let edge: Vec<_> = ws
        .files
        .iter()
        .filter(|f| f.rel_path.ends_with("lexer_edges.rs"))
        .cloned()
        .collect();
    assert_eq!(edge.len(), 1);
    let report = lint_files(&edge, &Config::default(), Some(&zero_baseline()));
    assert!(
        report.diagnostics.is_empty(),
        "lexer edge cases misfired: {:#?}",
        report.diagnostics
    );
}

#[test]
fn correct_baseline_clears_the_ratchet() {
    let ws = Workspace::load(&fixture_root()).unwrap();
    let mut baseline = zero_baseline();
    baseline.counts.insert("phy".to_string(), 1);
    baseline.unsafe_counts.insert("phy".to_string(), 1);
    let report = lint_files(&ws.files, &Config::default(), Some(&baseline));
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path == "lint-ratchet.toml"),
        "{:#?}",
        report.diagnostics
    );
    assert_eq!(report.panic_counts.get("phy"), Some(&1));
    assert_eq!(report.unsafe_counts.get("phy"), Some(&1));
}

#[test]
fn shrunk_surface_reports_improvement_not_failure() {
    let ws = Workspace::load(&fixture_root()).unwrap();
    let mut baseline = zero_baseline();
    baseline.counts.insert("phy".to_string(), 5);
    let report = lint_files(&ws.files, &Config::default(), Some(&baseline));
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.rule == Rule::PanicRatchet));
    assert_eq!(report.improvements.len(), 1);
    assert_eq!(report.improvements[0].krate, "phy");
    assert_eq!(report.improvements[0].actual, 1);
}

#[test]
fn missing_baseline_is_a_failure() {
    let ws = Workspace::load(&fixture_root()).unwrap();
    let report = lint_files(&ws.files, &Config::default(), None);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::PanicRatchet && d.message.contains("missing")),
        "{:#?}",
        report.diagnostics
    );
}

#[test]
fn cli_check_exits_nonzero_on_fixtures_with_file_line_output() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_sinr-lint"))
        .args(["--check", "--root"])
        .arg(fixture_root())
        .output()
        .expect("run sinr-lint binary");
    assert!(!out.status.success(), "fixture corpus must fail --check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "crates/phy/src/unordered.rs:4: [unordered-collections]",
        "crates/phy/src/wallclock.rs:4: [wall-clock]",
        "crates/phy/src/noisy.rs:4: [quiet-libraries]",
        "crates/phy/src/parallel.rs:4: [parallelism-resolver]",
        "crates/phy/src/unsound.rs:4: [forbid-unsafe]",
        "crates/phy/src/simd/kernel.rs:5: [forbid-unsafe]",
        "outside the SIMD allowlist",
        "crates/phy/src/lib.rs:1: [forbid-unsafe]",
        "[panic-ratchet]",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
}
