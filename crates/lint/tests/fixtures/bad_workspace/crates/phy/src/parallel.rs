//! Fixture: rule 4 — only the designated resolver queries the OS (line 4).

pub fn budget() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
