//! Fixture: rule 1 — unordered collections in a deterministic crate.
//! The linter must flag line 4 and nothing else in this file.

use std::collections::HashMap;
