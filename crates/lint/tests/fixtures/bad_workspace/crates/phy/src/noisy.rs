//! Fixture: rule 5 — libraries return data, binaries print (lines 4-6).

pub fn report(x: u64) {
    println!("x = {x}");
    eprintln!("warn");
    dbg!(x);
}
