//! Fixture: an intrinsic call under an *allowed* SIMD path but missing
//! the mandatory `// SAFETY:` comment (line 5).

pub fn lanes(xs: &[f64]) -> f64 {
    unsafe { core::hint::unreachable_unchecked() }
}
