//! Fixture: lexer edge cases — NOTHING in this file may be flagged.
//! Rule-trigger tokens below live only in strings, raw strings, char
//! literals, and comments; plus one real use under a justified allow.

/* block comment: HashMap, Instant::now(), println!("x"), unsafe */

pub const PLAIN: &str = "use std::collections::HashMap; unsafe { println!(\"x\") }";
pub const RAW: &str = r#"std::time::Instant::now() and HashSet::new() and dbg!(y)"#;
pub const RAW_FENCED: &str = r##"available_parallelism() inside an r#"…"# fence"##;
pub const BYTES: &[u8] = b"SystemTime::now() in a byte string";
pub const CH: char = 'H'; // 'H' as in HashMap — a char literal, not an ident

pub fn lifetime_not_char<'a>(text: &'a str) -> &'a str {
    // thread::sleep mentioned in a line comment is fine.
    text
}

// lint: allow(unordered-collections) -- fixture: proves suppression works
pub type Suppressed = std::collections::HashMap<u64, u64>;
