//! Fixture crate root: missing `#![forbid(unsafe_code)]` (rule 2a).

pub mod lexer_edges;
pub mod noisy;
pub mod panicky;
pub mod parallel;
pub mod unordered;
pub mod unsound;
pub mod wallclock;
