//! Fixture: rule 6 — one `unwrap()` counted toward the phy ratchet.
//! Produces no diagnostic by itself; the baseline comparison does.

pub fn must(x: Option<u8>) -> u8 {
    x.unwrap()
}
