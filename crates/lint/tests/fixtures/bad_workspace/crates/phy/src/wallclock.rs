//! Fixture: rule 3 — kernels must not read wall clocks (lines 4, 5, 6).

pub fn measure() -> u64 {
    let _t = std::time::Instant::now();
    std::thread::sleep(core::time::Duration::from_millis(1));
    let _s = std::time::SystemTime::now();
    0
}
