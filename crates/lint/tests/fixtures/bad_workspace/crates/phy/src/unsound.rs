//! Fixture: `unsafe` outside the SIMD allowlist (lines 4 and 9); the
//! SAFETY comment on the second fn cannot excuse the location.

pub unsafe fn read(ptr: *const u8) -> u8 {
    *ptr
}

// SAFETY: looks justified, but this file is not under a simd/ path.
pub unsafe fn annotated(ptr: *const u8) -> u8 {
    *ptr
}
