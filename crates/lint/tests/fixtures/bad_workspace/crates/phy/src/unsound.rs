//! Fixture: rule 2b — `unsafe` needs `// SAFETY:` (line 3).

pub unsafe fn read(ptr: *const u8) -> u8 {
    *ptr
}
