//! Self-application: the linter's strongest test is the workspace itself.
//!
//! * The real tree must be clean under `--check` (this is what the CI
//!   `lint` job asserts too — a violation fails here first, with the same
//!   diagnostic).
//! * The committed `lint-ratchet.toml` must reject a *seeded* `unwrap()`
//!   added to `crates/phy` — proving the ratchet actually bites.

use std::path::{Path, PathBuf};

use sinr_lint::{lint_files, lint_root, Config, Ratchet, Rule, SourceFile, Workspace};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_is_clean() {
    let report = lint_root(&repo_root(), &Config::default()).unwrap();
    assert!(
        report.is_clean(),
        "the workspace violates its own lint rules:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The committed baseline is exactly the measured surface: a shrink
    // should be banked via --ratchet-update, not left to drift.
    assert!(
        report.improvements.is_empty(),
        "panic surface shrank below the committed ceiling — run \
         `cargo run -p sinr-lint -- --ratchet-update` and commit: {:?}",
        report.improvements
    );
}

#[test]
fn committed_ratchet_rejects_a_seeded_unwrap_in_phy() {
    let root = repo_root();
    let mut files = Workspace::load(&root).unwrap().files;
    files.push(SourceFile {
        rel_path: "crates/phy/src/seeded_debt.rs".to_string(),
        text: "pub fn seeded(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n".to_string(),
    });
    let baseline_text =
        std::fs::read_to_string(root.join("lint-ratchet.toml")).expect("committed baseline");
    let baseline = Ratchet::parse(&baseline_text).unwrap();
    let report = lint_files(&files, &Config::default(), Some(&baseline));
    let ratchet_hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == Rule::PanicRatchet)
        .collect();
    assert_eq!(
        ratchet_hits.len(),
        1,
        "exactly the seeded unwrap must trip the ratchet: {:#?}",
        report.diagnostics
    );
    assert!(ratchet_hits[0].message.contains("`phy`"));
}

#[test]
fn committed_ratchet_rejects_a_seeded_unsafe_block_in_the_simd_tree() {
    let root = repo_root();
    let mut files = Workspace::load(&root).unwrap().files;
    // Correctly SAFETY-annotated and under an allowed path — but one
    // token over the committed `[unsafe-blocks]` ceiling.
    files.push(SourceFile {
        rel_path: "crates/phy/src/simd/seeded_unsafe.rs".to_string(),
        text: "// SAFETY: seeded fixture; the count still ratchets.\n\
               pub fn f() { unsafe { core::hint::unreachable_unchecked() } }\n"
            .to_string(),
    });
    let baseline_text =
        std::fs::read_to_string(root.join("lint-ratchet.toml")).expect("committed baseline");
    let baseline = Ratchet::parse(&baseline_text).unwrap();
    let report = lint_files(&files, &Config::default(), Some(&baseline));
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.path == "lint-ratchet.toml")
        .collect();
    assert_eq!(
        hits.len(),
        1,
        "exactly the seeded unsafe must trip the ratchet: {:#?}",
        report.diagnostics
    );
    assert!(hits[0].message.contains("`phy`"), "{:?}", hits[0]);
    assert!(hits[0].message.contains("unsafe"), "{:?}", hits[0]);
}

#[test]
fn seeded_unsafe_outside_the_allowlist_is_flagged() {
    let root = repo_root();
    let mut files = Workspace::load(&root).unwrap().files;
    // A SAFETY comment does not excuse unsafe outside the SIMD paths.
    files.push(SourceFile {
        rel_path: "crates/runtime/src/seeded_unsafe.rs".to_string(),
        text: "// SAFETY: the location, not the comment, is the violation.\n\
               pub fn f() { unsafe { core::hint::unreachable_unchecked() } }\n"
            .to_string(),
    });
    let baseline_text =
        std::fs::read_to_string(root.join("lint-ratchet.toml")).expect("committed baseline");
    let baseline = Ratchet::parse(&baseline_text).unwrap();
    let report = lint_files(&files, &Config::default(), Some(&baseline));
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == Rule::ForbidUnsafe)
        .collect();
    assert_eq!(hits.len(), 1, "{:#?}", report.diagnostics);
    assert!(
        hits[0].message.contains("outside the SIMD allowlist"),
        "{:?}",
        hits[0]
    );
}

#[test]
fn seeded_hashmap_in_deterministic_crate_is_flagged() {
    // End-to-end regression guard for the founding bug class: a fresh
    // `HashMap` import in `runtime` must be caught even with the rest of
    // the workspace clean.
    let root = repo_root();
    let mut files = Workspace::load(&root).unwrap().files;
    files.push(SourceFile {
        rel_path: "crates/runtime/src/seeded_map.rs".to_string(),
        text: "use std::collections::HashMap;\n".to_string(),
    });
    let baseline_text =
        std::fs::read_to_string(root.join("lint-ratchet.toml")).expect("committed baseline");
    let baseline = Ratchet::parse(&baseline_text).unwrap();
    let report = lint_files(&files, &Config::default(), Some(&baseline));
    assert_eq!(
        report
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::UnorderedCollections)
            .count(),
        1,
        "{:#?}",
        report.diagnostics
    );
}

#[test]
fn cli_check_exits_zero_on_the_workspace() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_sinr-lint"))
        .args(["--check", "--root"])
        .arg(repo_root())
        .output()
        .expect("run sinr-lint binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "sinr-lint --check failed:\n{stdout}");
    assert!(stdout.contains("sinr-lint: clean"), "{stdout}");
}
